// Package core is the public face of the test harness: it ties together
// workload execution (internal/harness), the formal conformance model
// (internal/model) and performance analysis (internal/analysis) into the
// paper's overall flow — run a configured test against a provider,
// collect the execution trace, verify every safety property, and compute
// the performance measures.
//
// Typical use:
//
//	b, _ := broker.New(broker.Options{Profile: broker.ProviderI()})
//	result, err := core.RunAndAnalyze(b, cfg, core.DefaultOptions())
//	fmt.Print(result)
package core

import (
	"fmt"
	"strings"

	"jmsharness/internal/analysis"
	"jmsharness/internal/clock"
	"jmsharness/internal/harness"
	"jmsharness/internal/jms"
	"jmsharness/internal/model"
	"jmsharness/internal/qos"
	"jmsharness/internal/trace"
)

// Options configures analysis.
type Options struct {
	// Model configures the safety-property checks.
	Model model.Config
	// Analysis configures the performance measures.
	Analysis analysis.Options
	// QoS, when set, evaluates the quantitative contract against the
	// trace alongside the safety properties.
	QoS *qos.Contract
	// Clock is the time source for test execution; nil means real time.
	Clock clock.Clock
}

// DefaultOptions returns the stock configuration.
func DefaultOptions() Options {
	return Options{Model: model.DefaultConfig()}
}

// Result is the outcome of analysing one test run.
type Result struct {
	// Test names the test.
	Test string
	// Stats summarises the raw trace.
	Stats trace.Stats
	// Conformance is the safety-property report.
	Conformance *model.Report
	// Performance is the §3.2 measures report.
	Performance *analysis.Measures
	// QoS is the quantitative-contract report; nil when no contract was
	// configured.
	QoS *qos.Report
}

// OK reports whether every safety property held and, when a contract
// was evaluated, every QoS check passed.
func (r *Result) OK() bool {
	return r.Conformance.OK() && (r.QoS == nil || r.QoS.OK())
}

// String renders the full report.
func (r *Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "=== test %s ===\n", r.Test)
	fmt.Fprintf(&b, "trace: %d events, %d nodes, %d sends, %d delivers, %d commits, %d aborts, %d crashes\n",
		r.Stats.Events, r.Stats.Nodes, r.Stats.Sends, r.Stats.Delivers,
		r.Stats.Commits, r.Stats.Aborts, r.Stats.Crashes)
	b.WriteString("--- conformance ---\n")
	b.WriteString(r.Conformance.String())
	b.WriteString("--- performance ---\n")
	b.WriteString(r.Performance.String())
	if r.QoS != nil {
		b.WriteString("--- qos ---\n")
		b.WriteString(r.QoS.String())
	}
	return b.String()
}

// Analyze checks a merged trace against the formal model and computes
// its performance measures.
func Analyze(name string, tr *trace.Trace, opts Options) (*Result, error) {
	report, err := model.Check(tr, opts.Model)
	if err != nil {
		return nil, fmt.Errorf("core: conformance analysis of %s: %w", name, err)
	}
	measures, err := analysis.Analyze(tr, opts.Analysis)
	if err != nil {
		return nil, fmt.Errorf("core: performance analysis of %s: %w", name, err)
	}
	res := &Result{
		Test:        name,
		Stats:       tr.Summarize(),
		Conformance: report,
		Performance: measures,
	}
	if opts.QoS != nil {
		res.QoS, err = opts.QoS.EvaluateTrace(tr)
		if err != nil {
			return nil, fmt.Errorf("core: qos evaluation of %s: %w", name, err)
		}
	}
	return res, nil
}

// RunAndAnalyze executes one configured test against a provider and
// analyses the resulting trace.
func RunAndAnalyze(factory jms.ConnectionFactory, cfg harness.Config, opts Options) (*Result, error) {
	runner := harness.NewRunner(factory, opts.Clock)
	tr, err := runner.Run(cfg)
	if err != nil {
		return nil, fmt.Errorf("core: running %s: %w", cfg.Name, err)
	}
	return Analyze(cfg.Name, tr, opts)
}

// RunSuite executes a series of tests in order (as the daemon prince
// schedules tests in the paper's architecture), continuing past
// conformance failures so a whole suite reports in one pass. Run errors
// abort the suite.
func RunSuite(factory jms.ConnectionFactory, cfgs []harness.Config, opts Options) ([]*Result, error) {
	results := make([]*Result, 0, len(cfgs))
	for _, cfg := range cfgs {
		res, err := RunAndAnalyze(factory, cfg, opts)
		if err != nil {
			return results, err
		}
		results = append(results, res)
	}
	return results, nil
}
