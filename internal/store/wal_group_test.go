package store

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"jmsharness/internal/jms"
	"jmsharness/internal/obs"
)

// TestWALGroupCommitDurability drives many concurrent AddMessage callers
// against a sync WAL, then simulates a crash by copying the raw log
// bytes the instant the writers return — without Close, so nothing
// beyond what each returned call already guaranteed is on "disk" — and
// reopens the copy. Every acknowledged record must survive: that is the
// group-commit contract (callers share an fsync, but none returns
// before the batch holding its record is durable).
func TestWALGroupCommitDurability(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "group.wal")
	w, err := OpenWAL(path, WALOptions{Sync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()

	const writers = 16
	const perWriter = 25
	var mu sync.Mutex
	acked := map[string]RecordID{} // message ID -> WAL record ID
	var wg sync.WaitGroup
	for g := 0; g < writers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				m := msg(fmt.Sprintf("w%d-%d", g, i))
				id, err := w.AddMessage("queue:q", m)
				if err != nil {
					t.Errorf("AddMessage: %v", err)
					return
				}
				mu.Lock()
				acked[m.ID] = id
				mu.Unlock()
			}
		}(g)
	}
	wg.Wait()
	if t.Failed() {
		return
	}

	// Crash: copy the log as-is, leaving the live WAL (and its committer
	// goroutine) untouched.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	crashPath := filepath.Join(dir, "crashed.wal")
	if err := os.WriteFile(crashPath, data, 0o644); err != nil {
		t.Fatal(err)
	}
	reopened, err := OpenWAL(crashPath, WALOptions{Sync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer reopened.Close()
	st, err := reopened.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	got := map[string]RecordID{}
	for _, sm := range st.Messages["queue:q"] {
		got[sm.Msg.ID] = sm.ID
	}
	if len(got) != writers*perWriter {
		t.Fatalf("recovered %d messages, want %d", len(got), writers*perWriter)
	}
	for id, rec := range acked {
		gotRec, ok := got[id]
		if !ok {
			t.Fatalf("acknowledged message %s lost after crash", id)
		}
		if gotRec != rec {
			t.Fatalf("message %s recovered with record ID %d, want %d", id, gotRec, rec)
		}
	}
}

// TestWALGroupCommitBatches proves the committer coalesces queued
// records into one write+fsync. Whether *live* writers overlap depends
// on scheduling and fsync latency (on a fast disk a lone CPU can
// serialize every append), so the test enqueues records before starting
// the committer goroutine: when it does start, the whole backlog must
// land as a single batch, and the log it writes must replay cleanly.
func TestWALGroupCommitBatches(t *testing.T) {
	path := filepath.Join(t.TempDir(), "batch.wal")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	w := &WAL{
		path:          path,
		sync:          true,
		f:             f,
		mirror:        NewMemory(),
		reqCh:         make(chan walCommit, maxCommitBatch),
		committerDone: make(chan struct{}),
		met: walMetrics{
			batch:   reg.Histogram("wal.commit_batch", CommitBatchBounds()),
			syncNs:  reg.Histogram("wal.sync_ns", nil),
			records: reg.Counter("wal.records"),
		},
	}

	const backlog = 8
	var dones []chan error
	w.mu.Lock()
	for i := 0; i < backlog; i++ {
		m := msg(fmt.Sprintf("batch-%d", i))
		w.nextID++
		e := jms.NewEncoder(nil)
		AppendOp(e, Op{Kind: OpAddMessage, ID: w.nextID, Endpoint: "queue:q", Msg: m})
		mirrorID, err := w.mirror.AddMessage("queue:q", m)
		if err != nil {
			w.mu.Unlock()
			t.Fatal(err)
		}
		w.app.Map("queue:q", w.nextID, mirrorID)
		dones = append(dones, w.commitLocked(e.Bytes()))
	}
	w.mu.Unlock()

	go w.commitLoop()
	for _, done := range dones {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	snap := w.met.batch.Snapshot()
	if snap.Count != 1 || snap.Sum != backlog {
		t.Fatalf("group commit recorded %d batches totalling %d records, want 1 batch of %d",
			snap.Count, snap.Sum, backlog)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	// The batched write must frame each record individually: reopening
	// replays all of them.
	reopened, err := OpenWAL(path, WALOptions{Sync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer reopened.Close()
	st, err := reopened.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if n := len(st.Messages["queue:q"]); n != backlog {
		t.Fatalf("recovered %d messages, want %d", n, backlog)
	}
}

// TestWALHostileLengthPrefix appends a frame whose uvarint length prefix
// claims far more bytes than the file holds. Replay must treat it as a
// torn tail — truncate and carry on — rather than trusting the length.
func TestWALHostileLengthPrefix(t *testing.T) {
	path := filepath.Join(t.TempDir(), "hostile.wal")
	w, err := OpenWAL(path, WALOptions{Sync: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.AddMessage("queue:q", msg("good")); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	// 0xFF×9 + 0x01 is a maximal 10-byte uvarint (≈2^63): a hostile
	// length prefix that must not be believed, let alone allocated.
	hostile := []byte{0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x01}
	if _, err := f.Write(hostile); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	reopened, err := OpenWAL(path, WALOptions{Sync: true})
	if err != nil {
		t.Fatalf("reopen after hostile tail: %v", err)
	}
	defer reopened.Close()
	st, err := reopened.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if n := len(st.Messages["queue:q"]); n != 1 {
		t.Fatalf("recovered %d messages, want 1", n)
	}
	// The hostile tail must be gone so later appends start clean.
	if _, err := reopened.AddMessage("queue:q", msg("after")); err != nil {
		t.Fatal(err)
	}
}

// TestRemoveMessageStagedGroupCommit stages a batch of removes and only
// then drains the waits — the shape of a session acknowledging many
// messages at once. The staged removes must (a) coalesce into far fewer
// group commits than the batch has records and (b) all be durable once
// the waits return, verified against a crash copy taken without Close.
func TestRemoveMessageStagedGroupCommit(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "staged-remove.wal")
	reg := obs.NewRegistry()
	w, err := OpenWAL(path, WALOptions{Sync: true, Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()

	const n = 64
	ids := make([]RecordID, 0, n)
	for i := 0; i < n; i++ {
		id, err := w.AddMessage("queue:q", msg(fmt.Sprintf("m%d", i)))
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}

	batches := reg.Histogram("wal.commit_batch", CommitBatchBounds())
	before := batches.Snapshot().Count
	waits := make([]func() error, 0, n)
	for _, id := range ids {
		wait, err := w.RemoveMessageStaged("queue:q", id)
		if err != nil {
			t.Fatal(err)
		}
		waits = append(waits, wait)
	}
	for _, wfn := range waits {
		if err := wfn(); err != nil {
			t.Fatal(err)
		}
	}
	commits := batches.Snapshot().Count - before
	if commits >= n/4 {
		t.Fatalf("%d staged removes cost %d group commits, want coalescing", n, commits)
	}

	// Crash: the log as-is, without Close, must already hold every
	// remove whose wait returned.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	crashPath := filepath.Join(dir, "crash.wal")
	if err := os.WriteFile(crashPath, data, 0o644); err != nil {
		t.Fatal(err)
	}
	reopened, err := OpenWAL(crashPath, WALOptions{Sync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer reopened.Close()
	st, err := reopened.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if got := len(st.Messages["queue:q"]); got != 0 {
		t.Fatalf("crash copy still holds %d messages, want 0 after staged removes", got)
	}
}
