package store

import (
	"os"
	"path/filepath"
	"testing"
	"time"

	"jmsharness/internal/jms"
	"jmsharness/internal/obs"
)

// newTestWAL wires a WAL struct around f the way OpenWAL does, without
// starting the committer goroutine, so tests control when (and against
// what file state) commits run.
func newTestWAL(path string, f *os.File) *WAL {
	reg := obs.NewRegistry()
	return &WAL{
		path:          path,
		sync:          true,
		f:             f,
		mirror:        NewMemory(),
		reqCh:         make(chan walCommit, maxCommitBatch),
		committerDone: make(chan struct{}),
		met: walMetrics{
			batch:   reg.Histogram("wal.commit_batch", CommitBatchBounds()),
			syncNs:  reg.Histogram("wal.sync_ns", nil),
			records: reg.Counter("wal.records"),
		},
	}
}

// encAdd encodes one add-message payload, as the mutators do.
func encAdd(id uint64, m *jms.Message) []byte {
	e := jms.NewEncoder(nil)
	AppendOp(e, Op{Kind: OpAddMessage, ID: RecordID(id), Endpoint: "queue:q", Msg: m})
	return e.Bytes()
}

// TestWALCommitErrorReleasesWaiterHoldingMu regression-tests the
// committer-vs-mu deadlock: a waiter may legitimately hold w.mu while
// blocked on its done channel (Compact does exactly this for its flush
// barrier, and a mutator can hold w.mu while enqueueing into a full
// reqCh), so on a commit error the committer must release the batch's
// waiters without ever acquiring w.mu. The old code took w.mu to set
// the sticky failure before delivering, which wedged forever here.
func TestWALCommitErrorReleasesWaiterHoldingMu(t *testing.T) {
	path := filepath.Join(t.TempDir(), "fail.wal")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	w := newTestWAL(path, f)
	// Sabotage the file so the first batch's write fails.
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	w.mu.Lock()
	done := w.commitLocked(encAdd(1, msg("doomed")))
	go w.commitLoop()
	// Wait for the commit result while still holding w.mu, mirroring
	// Compact's barrier wait.
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("commit against a closed file reported success")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("deadlock: committer never delivered the commit error to a waiter holding w.mu")
	}
	w.mu.Unlock()

	// The failure is sticky for mutations and reads alike: the mirror
	// may hold the record the caller was just told failed.
	if _, err := w.AddMessage("queue:q", msg("after")); err == nil {
		t.Fatal("AddMessage after a commit failure reported success")
	}
	if _, err := w.Snapshot(); err == nil {
		t.Fatal("Snapshot after a commit failure reported success")
	}
	_ = w.Close() // file already closed; only the goroutine shutdown matters
}

// TestWALCommitErrorRefusesLaterBatches proves that once a batch fails,
// records buffered behind it are refused rather than written: a failed
// write can leave a torn frame mid-log, and replay stops at the first
// bad frame, so anything appended past the hole would be acknowledged
// yet silently lost on recovery.
func TestWALCommitErrorRefusesLaterBatches(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "fail.wal")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	w := newTestWAL(path, f)
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	w.mu.Lock()
	done1 := w.commitLocked(encAdd(1, msg("first")))
	w.mu.Unlock()
	go w.commitLoop()
	if err := <-done1; err == nil {
		t.Fatal("commit against a closed file reported success")
	}

	// Heal the file handle: if the committer still wrote post-failure
	// batches, this record would land on disk and be acknowledged.
	// The swap is ordered before the committer's next batch by the
	// reqCh send below.
	healed, err := os.Create(filepath.Join(dir, "healed.wal"))
	if err != nil {
		t.Fatal(err)
	}
	w.f = healed

	w.mu.Lock()
	done2 := w.commitLocked(encAdd(2, msg("second")))
	w.mu.Unlock()
	if err := <-done2; err == nil {
		t.Fatal("commit queued behind a failed batch reported success")
	}
	st, err := healed.Stat()
	if err != nil {
		t.Fatal(err)
	}
	if st.Size() != 0 {
		t.Fatalf("committer wrote %d bytes after a failed batch", st.Size())
	}
	_ = w.Close()
}
