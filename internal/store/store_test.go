package store

import (
	"math/rand"
	"os"
	"path/filepath"
	"testing"
	"testing/quick"

	"jmsharness/internal/jms"
)

// storeFactory builds a fresh store for the shared conformance tests.
type storeFactory func(t *testing.T) Store

func memoryFactory(t *testing.T) Store {
	t.Helper()
	return NewMemory()
}

func walFactory(t *testing.T) Store {
	t.Helper()
	w, err := OpenWAL(filepath.Join(t.TempDir(), "test.wal"), WALOptions{})
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func forEachStore(t *testing.T, test func(t *testing.T, s Store)) {
	t.Helper()
	for name, factory := range map[string]storeFactory{"memory": memoryFactory, "wal": walFactory} {
		t.Run(name, func(t *testing.T) {
			s := factory(t)
			defer s.Close()
			test(t, s)
		})
	}
}

func msg(text string) *jms.Message {
	m := jms.NewTextMessage(text)
	m.ID = "ID:" + text
	m.Destination = jms.Queue("q")
	m.Mode = jms.Persistent
	m.Priority = 4
	return m
}

func TestStoreAddSnapshot(t *testing.T) {
	forEachStore(t, func(t *testing.T, s Store) {
		if _, err := s.AddMessage("queue:q", msg("a")); err != nil {
			t.Fatal(err)
		}
		if _, err := s.AddMessage("queue:q", msg("b")); err != nil {
			t.Fatal(err)
		}
		st, err := s.Snapshot()
		if err != nil {
			t.Fatal(err)
		}
		got := st.Messages["queue:q"]
		if len(got) != 2 {
			t.Fatalf("snapshot has %d messages", len(got))
		}
		if got[0].Msg.Body.(jms.TextBody) != "a" || got[1].Msg.Body.(jms.TextBody) != "b" {
			t.Error("arrival order not preserved")
		}
	})
}

func TestStoreRemove(t *testing.T) {
	forEachStore(t, func(t *testing.T, s Store) {
		id1, err := s.AddMessage("queue:q", msg("a"))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := s.AddMessage("queue:q", msg("b")); err != nil {
			t.Fatal(err)
		}
		if err := s.RemoveMessage("queue:q", id1); err != nil {
			t.Fatal(err)
		}
		st, err := s.Snapshot()
		if err != nil {
			t.Fatal(err)
		}
		got := st.Messages["queue:q"]
		if len(got) != 1 || got[0].Msg.Body.(jms.TextBody) != "b" {
			t.Errorf("after remove: %v", got)
		}
		if err := s.RemoveMessage("queue:q", id1); err == nil {
			t.Error("double remove should fail")
		}
		if err := s.RemoveMessage("queue:other", 99); err == nil {
			t.Error("remove from unknown endpoint should fail")
		}
	})
}

func TestStoreSubscriptions(t *testing.T) {
	forEachStore(t, func(t *testing.T, s Store) {
		sub := SubscriptionRecord{ClientID: "c1", Name: "news", Topic: "t"}
		if err := s.AddSubscription(sub); err != nil {
			t.Fatal(err)
		}
		st, err := s.Snapshot()
		if err != nil {
			t.Fatal(err)
		}
		if len(st.Subscriptions) != 1 || st.Subscriptions[0] != sub {
			t.Errorf("subscriptions = %v", st.Subscriptions)
		}
		if err := s.RemoveSubscription("c1", "news"); err != nil {
			t.Fatal(err)
		}
		st, err = s.Snapshot()
		if err != nil {
			t.Fatal(err)
		}
		if len(st.Subscriptions) != 0 {
			t.Error("subscription not removed")
		}
		if err := s.RemoveSubscription("c1", "news"); err == nil {
			t.Error("removing unknown subscription should fail")
		}
	})
}

func TestStoreRemoveSubscriptionDropsMessages(t *testing.T) {
	forEachStore(t, func(t *testing.T, s Store) {
		sub := SubscriptionRecord{ClientID: "c1", Name: "news", Topic: "t"}
		if err := s.AddSubscription(sub); err != nil {
			t.Fatal(err)
		}
		if _, err := s.AddMessage("sub:c1:news", msg("pending")); err != nil {
			t.Fatal(err)
		}
		if err := s.RemoveSubscription("c1", "news"); err != nil {
			t.Fatal(err)
		}
		st, err := s.Snapshot()
		if err != nil {
			t.Fatal(err)
		}
		if len(st.Messages["sub:c1:news"]) != 0 {
			t.Error("pending messages should be dropped with subscription")
		}
	})
}

func TestStoreClosedOperations(t *testing.T) {
	forEachStore(t, func(t *testing.T, s Store) {
		if err := s.Close(); err != nil {
			t.Fatal(err)
		}
		if _, err := s.AddMessage("queue:q", msg("a")); err == nil {
			t.Error("AddMessage after close should fail")
		}
		if _, err := s.Snapshot(); err == nil {
			t.Error("Snapshot after close should fail")
		}
	})
}

func TestStoreSnapshotIsolation(t *testing.T) {
	forEachStore(t, func(t *testing.T, s Store) {
		original := msg("a")
		if _, err := s.AddMessage("queue:q", original); err != nil {
			t.Fatal(err)
		}
		st, err := s.Snapshot()
		if err != nil {
			t.Fatal(err)
		}
		st.Messages["queue:q"][0].Msg.ID = "tampered"
		st2, err := s.Snapshot()
		if err != nil {
			t.Fatal(err)
		}
		if st2.Messages["queue:q"][0].Msg.ID == "tampered" {
			t.Error("snapshot shares storage with the store")
		}
		original.ID = "also-tampered"
		st3, err := s.Snapshot()
		if err != nil {
			t.Fatal(err)
		}
		if st3.Messages["queue:q"][0].Msg.ID == "also-tampered" {
			t.Error("store aliases caller's message")
		}
	})
}

func TestWALRecovery(t *testing.T) {
	path := filepath.Join(t.TempDir(), "recover.wal")
	w, err := OpenWAL(path, WALOptions{Sync: true})
	if err != nil {
		t.Fatal(err)
	}
	id1, err := w.AddMessage("queue:q", msg("keep1"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.AddMessage("queue:q", msg("keep2")); err != nil {
		t.Fatal(err)
	}
	idGone, err := w.AddMessage("queue:q", msg("gone"))
	if err != nil {
		t.Fatal(err)
	}
	if err := w.RemoveMessage("queue:q", idGone); err != nil {
		t.Fatal(err)
	}
	if err := w.AddSubscription(SubscriptionRecord{ClientID: "c", Name: "n", Topic: "t"}); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	w2, err := OpenWAL(path, WALOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	st, err := w2.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	msgs := st.Messages["queue:q"]
	if len(msgs) != 2 {
		t.Fatalf("recovered %d messages, want 2", len(msgs))
	}
	if msgs[0].Msg.Body.(jms.TextBody) != "keep1" || msgs[1].Msg.Body.(jms.TextBody) != "keep2" {
		t.Error("recovered messages wrong or out of order")
	}
	if len(st.Subscriptions) != 1 {
		t.Error("subscription not recovered")
	}
	// Record IDs from the snapshot must be usable after recovery.
	if err := w2.RemoveMessage("queue:q", msgs[0].ID); err != nil {
		t.Errorf("recovered record ID unusable: %v", err)
	}
	_ = id1
}

func TestWALTornTailTruncated(t *testing.T) {
	path := filepath.Join(t.TempDir(), "torn.wal")
	w, err := OpenWAL(path, WALOptions{Sync: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.AddMessage("queue:q", msg("good")); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	// Append garbage simulating a torn write.
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0x20, 0x01, 0x02}); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	w2, err := OpenWAL(path, WALOptions{})
	if err != nil {
		t.Fatalf("torn tail should be tolerated: %v", err)
	}
	defer w2.Close()
	st, err := w2.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Messages["queue:q"]) != 1 {
		t.Error("good prefix lost")
	}
	// And the torn bytes must have been truncated away, so appending works.
	if _, err := w2.AddMessage("queue:q", msg("after")); err != nil {
		t.Fatal(err)
	}
	if err := w2.Close(); err != nil {
		t.Fatal(err)
	}
	w3, err := OpenWAL(path, WALOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer w3.Close()
	st3, err := w3.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if len(st3.Messages["queue:q"]) != 2 {
		t.Errorf("recovered %d messages after re-append", len(st3.Messages["queue:q"]))
	}
}

// TestWALTruncatedMidRecord cuts the log off inside the last record —
// the shape a power loss leaves after a partial write — and checks
// recovery keeps the good prefix, discards the half record, and leaves
// the log appendable.
func TestWALTruncatedMidRecord(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cut.wal")
	w, err := OpenWAL(path, WALOptions{Sync: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.AddMessage("queue:q", msg("keep1")); err != nil {
		t.Fatal(err)
	}
	if _, err := w.AddMessage("queue:q", msg("keep2")); err != nil {
		t.Fatal(err)
	}
	prefix, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.AddMessage("queue:q", msg("torn")); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	whole, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	// Cut into the middle of the last record.
	cut := prefix.Size() + (whole.Size()-prefix.Size())/2
	if err := os.Truncate(path, cut); err != nil {
		t.Fatal(err)
	}

	w2, err := OpenWAL(path, WALOptions{})
	if err != nil {
		t.Fatalf("truncated record should be tolerated: %v", err)
	}
	defer w2.Close()
	st, err := w2.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	msgs := st.Messages["queue:q"]
	if len(msgs) != 2 {
		t.Fatalf("recovered %d messages, want the 2 whole ones", len(msgs))
	}
	if msgs[0].Msg.Body.(jms.TextBody) != "keep1" || msgs[1].Msg.Body.(jms.TextBody) != "keep2" {
		t.Error("recovered prefix wrong")
	}
	if size, err := os.Stat(path); err != nil || size.Size() != prefix.Size() {
		t.Errorf("half record not truncated away: %d bytes, want %d", size.Size(), prefix.Size())
	}
	if _, err := w2.AddMessage("queue:q", msg("after")); err != nil {
		t.Fatal(err)
	}
}

// TestWALCorruptedTailChecksum flips one byte inside the final record
// (bit rot, not a torn write) and checks the checksum catches it:
// recovery stops at the last intact record and rewinds the log there.
func TestWALCorruptedTailChecksum(t *testing.T) {
	path := filepath.Join(t.TempDir(), "rot.wal")
	w, err := OpenWAL(path, WALOptions{Sync: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.AddMessage("queue:q", msg("keep")); err != nil {
		t.Fatal(err)
	}
	prefix, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.AddMessage("queue:q", msg("rotted")); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	mid := prefix.Size() + (int64(len(data))-prefix.Size())/2
	data[mid] ^= 0xFF
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	w2, err := OpenWAL(path, WALOptions{})
	if err != nil {
		t.Fatalf("corrupt tail record should be tolerated: %v", err)
	}
	defer w2.Close()
	st, err := w2.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	msgs := st.Messages["queue:q"]
	if len(msgs) != 1 || msgs[0].Msg.Body.(jms.TextBody) != "keep" {
		t.Fatalf("recovered %d messages, want only the intact one", len(msgs))
	}
	// The rewind must land exactly on the good prefix so new appends
	// frame cleanly.
	if size, err := os.Stat(path); err != nil || size.Size() != prefix.Size() {
		t.Errorf("corrupt record not truncated away: %d bytes, want %d", size.Size(), prefix.Size())
	}
	if _, err := w2.AddMessage("queue:q", msg("after")); err != nil {
		t.Fatal(err)
	}
	if err := w2.Close(); err != nil {
		t.Fatal(err)
	}
	w3, err := OpenWAL(path, WALOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer w3.Close()
	st3, err := w3.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if got := len(st3.Messages["queue:q"]); got != 2 {
		t.Errorf("recovered %d messages after re-append, want 2", got)
	}
}

// TestStoreMarkDelivered covers the delivered-marker contract on both
// implementations: the flag shows up in snapshots, marking is
// idempotent, unknown IDs are a no-op, and acknowledging the message
// clears it.
func TestStoreMarkDelivered(t *testing.T) {
	forEachStore(t, func(t *testing.T, s Store) {
		id1, err := s.AddMessage("queue:q", msg("a"))
		if err != nil {
			t.Fatal(err)
		}
		id2, err := s.AddMessage("queue:q", msg("b"))
		if err != nil {
			t.Fatal(err)
		}
		if err := s.MarkDelivered("queue:q", id1); err != nil {
			t.Fatal(err)
		}
		if err := s.MarkDelivered("queue:q", id1); err != nil {
			t.Fatalf("second mark must be idempotent: %v", err)
		}
		if err := s.MarkDelivered("queue:q", RecordID(9999)); err != nil {
			t.Fatalf("unknown ID must be a no-op: %v", err)
		}
		st, err := s.Snapshot()
		if err != nil {
			t.Fatal(err)
		}
		msgs := st.Messages["queue:q"]
		if len(msgs) != 2 {
			t.Fatalf("%d messages, want 2", len(msgs))
		}
		if !msgs[0].Delivered || msgs[1].Delivered {
			t.Errorf("delivered flags = %v,%v want true,false", msgs[0].Delivered, msgs[1].Delivered)
		}
		if err := s.RemoveMessage("queue:q", id1); err != nil {
			t.Fatal(err)
		}
		_ = id2
	})
}

// TestWALMarkDeliveredDurability checks the delivered marker survives
// both recovery replay and compaction — it is exactly the bit that must
// not be lost across a crash, or redelivered messages come back without
// their JMSRedelivered flag.
func TestWALMarkDeliveredDurability(t *testing.T) {
	path := filepath.Join(t.TempDir(), "deliv.wal")
	w, err := OpenWAL(path, WALOptions{Sync: true})
	if err != nil {
		t.Fatal(err)
	}
	idA, err := w.AddMessage("queue:q", msg("a"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.AddMessage("queue:q", msg("b")); err != nil {
		t.Fatal(err)
	}
	if err := w.MarkDelivered("queue:q", idA); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	w2, err := OpenWAL(path, WALOptions{})
	if err != nil {
		t.Fatal(err)
	}
	st, err := w2.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	msgs := st.Messages["queue:q"]
	if len(msgs) != 2 || !msgs[0].Delivered || msgs[1].Delivered {
		t.Fatalf("after replay: delivered flags wrong: %+v", msgs)
	}
	// Compaction rewrites the log from the mirror; the marker must be
	// re-emitted, and a marker on a since-removed record must not
	// resurrect anything.
	if err := w2.Compact(); err != nil {
		t.Fatal(err)
	}
	if err := w2.Close(); err != nil {
		t.Fatal(err)
	}
	w3, err := OpenWAL(path, WALOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer w3.Close()
	st3, err := w3.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	msgs = st3.Messages["queue:q"]
	if len(msgs) != 2 || !msgs[0].Delivered || msgs[1].Delivered {
		t.Fatalf("after compaction: delivered flags wrong: %+v", msgs)
	}
}

func TestWALCompact(t *testing.T) {
	path := filepath.Join(t.TempDir(), "compact.wal")
	w, err := OpenWAL(path, WALOptions{})
	if err != nil {
		t.Fatal(err)
	}
	var keepID RecordID
	for i := 0; i < 100; i++ {
		id, err := w.AddMessage("queue:q", msg("x"))
		if err != nil {
			t.Fatal(err)
		}
		if i == 99 {
			keepID = id
		} else if err := w.RemoveMessage("queue:q", id); err != nil {
			t.Fatal(err)
		}
	}
	before, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Compact(); err != nil {
		t.Fatal(err)
	}
	after, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if after.Size() >= before.Size() {
		t.Errorf("compaction did not shrink log: %d -> %d", before.Size(), after.Size())
	}
	// Live record still present and its ID usable.
	if err := w.RemoveMessage("queue:q", keepID); err != nil {
		t.Errorf("live record lost by compaction: %v", err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	// Compacted log replays cleanly.
	w2, err := OpenWAL(path, WALOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	st, err := w2.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Messages["queue:q"]) != 0 {
		t.Error("compacted state should be empty after final remove")
	}
}

// TestStoreEquivalenceProperty drives Memory and WAL with the same random
// operation sequence and checks their snapshots agree — the WAL must be
// an indistinguishable durable implementation of the same contract.
func TestStoreEquivalenceProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		mem := NewMemory()
		walPath := filepath.Join(t.TempDir(), "equiv.wal")
		wal, err := OpenWAL(walPath, WALOptions{})
		if err != nil {
			t.Fatal(err)
		}
		endpoints := []string{"queue:a", "queue:b", "sub:c:s"}
		type livePair struct {
			ep           string
			memID, walID RecordID
		}
		var live []livePair
		for op := 0; op < 60; op++ {
			switch r.Intn(4) {
			case 0, 1: // add
				ep := endpoints[r.Intn(len(endpoints))]
				m := msg(string(rune('a' + r.Intn(26))))
				memID, err := mem.AddMessage(ep, m)
				if err != nil {
					t.Fatal(err)
				}
				walID, err := wal.AddMessage(ep, m)
				if err != nil {
					t.Fatal(err)
				}
				live = append(live, livePair{ep, memID, walID})
			case 2: // remove
				if len(live) == 0 {
					continue
				}
				i := r.Intn(len(live))
				p := live[i]
				if err := mem.RemoveMessage(p.ep, p.memID); err != nil {
					t.Fatal(err)
				}
				if err := wal.RemoveMessage(p.ep, p.walID); err != nil {
					t.Fatal(err)
				}
				live = append(live[:i], live[i+1:]...)
			case 3: // mark delivered
				if len(live) == 0 {
					continue
				}
				p := live[r.Intn(len(live))]
				if err := mem.MarkDelivered(p.ep, p.memID); err != nil {
					t.Fatal(err)
				}
				if err := wal.MarkDelivered(p.ep, p.walID); err != nil {
					t.Fatal(err)
				}
			}
		}
		// Close and reopen the WAL to force recovery, then compare.
		if err := wal.Close(); err != nil {
			t.Fatal(err)
		}
		wal2, err := OpenWAL(walPath, WALOptions{})
		if err != nil {
			t.Fatal(err)
		}
		defer wal2.Close()
		memSt, err := mem.Snapshot()
		if err != nil {
			t.Fatal(err)
		}
		walSt, err := wal2.Snapshot()
		if err != nil {
			t.Fatal(err)
		}
		if len(memSt.Messages) != len(walSt.Messages) {
			t.Logf("endpoint count mismatch: %d vs %d", len(memSt.Messages), len(walSt.Messages))
			return false
		}
		for ep, memMsgs := range memSt.Messages {
			walMsgs := walSt.Messages[ep]
			if len(memMsgs) != len(walMsgs) {
				t.Logf("endpoint %s: %d vs %d messages", ep, len(memMsgs), len(walMsgs))
				return false
			}
			for i := range memMsgs {
				if !memMsgs[i].Msg.Equal(walMsgs[i].Msg) {
					t.Logf("endpoint %s message %d differs", ep, i)
					return false
				}
				if memMsgs[i].Delivered != walMsgs[i].Delivered {
					t.Logf("endpoint %s message %d delivered flag differs", ep, i)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}
