package store

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"jmsharness/internal/jms"
)

// shardedEndpoints returns one endpoint routed to each shard of s, so a
// test can place records in specific shards deterministically.
func shardedEndpoints(t *testing.T, s *ShardedWAL) []string {
	t.Helper()
	eps := make([]string, s.Shards())
	found := 0
	for i := 0; found < s.Shards() && i < 10000; i++ {
		ep := fmt.Sprintf("queue:q%d", i)
		for si, w := range s.shards {
			if eps[si] == "" && s.shardFor(ep) == w {
				eps[si] = ep
				found++
				break
			}
		}
	}
	if found < s.Shards() {
		t.Fatalf("could not find an endpoint per shard (%d/%d)", found, s.Shards())
	}
	return eps
}

func TestShardedWALRoundtripAndRecovery(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sharded.wal")
	s, err := OpenSharded(path, 4, WALOptions{Sync: true})
	if err != nil {
		t.Fatal(err)
	}
	eps := shardedEndpoints(t, s)

	seen := map[RecordID]bool{}
	var lastID RecordID
	for round := 0; round < 3; round++ {
		for _, ep := range eps {
			id, err := s.AddMessage(ep, msg(fmt.Sprintf("%s-%d", ep, round)))
			if err != nil {
				t.Fatal(err)
			}
			if seen[id] {
				t.Fatalf("record ID %d assigned twice across shards", id)
			}
			if id <= lastID {
				t.Fatalf("global sequence not monotonic: %d after %d", id, lastID)
			}
			seen[id] = true
			lastID = id
		}
	}
	// Remove round 1 from every endpoint, mark round 0 delivered.
	st, err := s.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	for _, ep := range eps {
		msgs := st.Messages[ep]
		if len(msgs) != 3 {
			t.Fatalf("endpoint %s has %d messages, want 3", ep, len(msgs))
		}
		if err := s.RemoveMessage(ep, msgs[1].ID); err != nil {
			t.Fatal(err)
		}
		if err := s.MarkDelivered(ep, msgs[0].ID); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.AddSubscription(SubscriptionRecord{ClientID: "c", Name: "n", Topic: "t"}); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen: the merged recovery state must match, per-endpoint order
	// preserved, and new IDs must continue above every recovered one.
	s2, err := OpenSharded(path, 4, WALOptions{Sync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	st2, err := s2.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	for _, ep := range eps {
		msgs := st2.Messages[ep]
		if len(msgs) != 2 {
			t.Fatalf("endpoint %s recovered %d messages, want 2", ep, len(msgs))
		}
		if msgs[0].Msg.Body.(jms.TextBody) != jms.TextBody(ep+"-0") ||
			msgs[1].Msg.Body.(jms.TextBody) != jms.TextBody(ep+"-2") {
			t.Errorf("endpoint %s recovered out of order: %v, %v", ep, msgs[0].Msg.Body, msgs[1].Msg.Body)
		}
		if !msgs[0].Delivered || msgs[1].Delivered {
			t.Errorf("endpoint %s delivered marks wrong", ep)
		}
		// Recovered IDs must be live for mutation.
		if err := s2.RemoveMessage(ep, msgs[1].ID); err != nil {
			t.Errorf("recovered record ID unusable: %v", err)
		}
	}
	if len(st2.Subscriptions) != 1 {
		t.Errorf("recovered %d subscriptions, want 1", len(st2.Subscriptions))
	}
	id, err := s2.AddMessage(eps[0], msg("after"))
	if err != nil {
		t.Fatal(err)
	}
	if id <= lastID {
		t.Errorf("post-recovery ID %d not above recovered maximum %d", id, lastID)
	}
}

// TestShardedWALTornTailIsolated tears the tail of one shard's file and
// checks recovery truncates only that shard: sibling shards keep every
// record in order.
func TestShardedWALTornTailIsolated(t *testing.T) {
	path := filepath.Join(t.TempDir(), "torn.wal")
	s, err := OpenSharded(path, 2, WALOptions{Sync: true})
	if err != nil {
		t.Fatal(err)
	}
	eps := shardedEndpoints(t, s)
	victim := s.shardFor(eps[0])
	victimPath := victim.path
	for round := 0; round < 3; round++ {
		for _, ep := range eps {
			if _, err := s.AddMessage(ep, msg(fmt.Sprintf("%s-%d", ep, round))); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Tear the victim's tail: garbage bytes simulating a half-written
	// record at power loss.
	f, err := os.OpenFile(victimPath, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0x40, 0xde, 0xad}); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := OpenSharded(path, 2, WALOptions{Sync: true})
	if err != nil {
		t.Fatalf("torn shard tail should be tolerated: %v", err)
	}
	defer s2.Close()
	st, err := s2.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	for _, ep := range eps {
		msgs := st.Messages[ep]
		if len(msgs) != 3 {
			t.Fatalf("endpoint %s recovered %d messages, want 3 (torn tail must not eat committed records)", ep, len(msgs))
		}
		for i, sm := range msgs {
			want := jms.TextBody(fmt.Sprintf("%s-%d", ep, i))
			if sm.Msg.Body.(jms.TextBody) != want {
				t.Errorf("endpoint %s message %d = %v, want %v (sibling shard reordered)", ep, i, sm.Msg.Body, want)
			}
		}
	}
	// The torn shard must be appendable again (tail truncated away).
	if _, err := s2.AddMessage(eps[0], msg("after-tear")); err != nil {
		t.Fatal(err)
	}
}

// TestShardedWALCrashDuringRotation simulates a crash between writing a
// shard's compaction file and renaming it into place: the stale
// .compact temp file must not confuse recovery, and a later Compact
// must succeed and clean it up.
func TestShardedWALCrashDuringRotation(t *testing.T) {
	path := filepath.Join(t.TempDir(), "rot.wal")
	s, err := OpenSharded(path, 2, WALOptions{Sync: true})
	if err != nil {
		t.Fatal(err)
	}
	eps := shardedEndpoints(t, s)
	for _, ep := range eps {
		if _, err := s.AddMessage(ep, msg(ep)); err != nil {
			t.Fatal(err)
		}
	}
	victimPath := s.shardFor(eps[0]).path
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// A crashed rotation leaves a partial compaction temp file next to
	// the live log.
	stale := victimPath + ".compact"
	if err := os.WriteFile(stale, []byte("partial compaction output"), 0o644); err != nil {
		t.Fatal(err)
	}

	s2, err := OpenSharded(path, 2, WALOptions{Sync: true})
	if err != nil {
		t.Fatalf("stale compaction file must not break recovery: %v", err)
	}
	st, err := s2.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	for _, ep := range eps {
		if len(st.Messages[ep]) != 1 {
			t.Fatalf("endpoint %s lost records after crashed rotation", ep)
		}
	}
	if err := s2.Compact(); err != nil {
		t.Fatalf("compaction after crashed rotation: %v", err)
	}
	if _, err := os.Stat(stale); !os.IsNotExist(err) {
		t.Errorf("stale compaction file survived a successful Compact: %v", err)
	}
	if err := s2.Close(); err != nil {
		t.Fatal(err)
	}

	s3, err := OpenSharded(path, 2, WALOptions{Sync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer s3.Close()
	st3, err := s3.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	for _, ep := range eps {
		if len(st3.Messages[ep]) != 1 {
			t.Fatalf("endpoint %s lost records across compacted reopen", ep)
		}
	}
}

// TestShardedWALCompactBarrierConcurrent runs writers across every
// shard while Compact rewrites the logs, then reopens and verifies no
// record was lost, duplicated, or reordered. Run under -race this also
// exercises the cross-shard barrier's synchronization.
func TestShardedWALCompactBarrierConcurrent(t *testing.T) {
	path := filepath.Join(t.TempDir(), "barrier.wal")
	s, err := OpenSharded(path, 4, WALOptions{Sync: false})
	if err != nil {
		t.Fatal(err)
	}
	const writers = 8
	const perWriter = 50
	var wg sync.WaitGroup
	for wi := 0; wi < writers; wi++ {
		wg.Add(1)
		go func(wi int) {
			defer wg.Done()
			ep := fmt.Sprintf("queue:barrier%d", wi)
			for i := 0; i < perWriter; i++ {
				id, err := s.AddMessage(ep, msg(fmt.Sprintf("m%d", i)))
				if err != nil {
					t.Errorf("writer %d: %v", wi, err)
					return
				}
				if i%2 == 0 {
					if err := s.RemoveMessage(ep, id); err != nil {
						t.Errorf("writer %d remove: %v", wi, err)
						return
					}
				}
			}
		}(wi)
	}
	compactDone := make(chan struct{})
	go func() {
		defer close(compactDone)
		for i := 0; i < 5; i++ {
			if err := s.Compact(); err != nil {
				t.Errorf("concurrent compact: %v", err)
				return
			}
		}
	}()
	wg.Wait()
	<-compactDone
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := OpenSharded(path, 4, WALOptions{Sync: false})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	st, err := s2.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	for wi := 0; wi < writers; wi++ {
		ep := fmt.Sprintf("queue:barrier%d", wi)
		msgs := st.Messages[ep]
		if len(msgs) != perWriter/2 {
			t.Fatalf("endpoint %s recovered %d messages, want %d", ep, len(msgs), perWriter/2)
		}
		for i, sm := range msgs {
			want := jms.TextBody(fmt.Sprintf("m%d", 2*i+1))
			if sm.Msg.Body.(jms.TextBody) != want {
				t.Fatalf("endpoint %s position %d = %v, want %v", ep, i, sm.Msg.Body, want)
			}
		}
	}
}

// TestShardedWALStreamPlumbing checks that all shards publish their
// committed records into the one shared stream, and that a follower
// applying the stream reconstructs the merged state.
func TestShardedWALStreamPlumbing(t *testing.T) {
	path := filepath.Join(t.TempDir(), "stream.wal")
	stream := NewStream()
	s, err := OpenSharded(path, 4, WALOptions{Sync: false, Stream: stream})
	if err != nil {
		t.Fatal(err)
	}
	eps := shardedEndpoints(t, s)
	for round := 0; round < 2; round++ {
		for _, ep := range eps {
			id, err := s.AddMessage(ep, msg(fmt.Sprintf("%s-%d", ep, round)))
			if err != nil {
				t.Fatal(err)
			}
			if round == 0 {
				if err := s.RemoveMessage(ep, id); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	if err := s.AddSubscription(SubscriptionRecord{ClientID: "c", Name: "n", Topic: "t"}); err != nil {
		t.Fatal(err)
	}

	// Every record above committed before its call returned, so the
	// stream already holds all of them.
	sub, err := stream.Subscribe(0)
	if err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	close(stop) // drain what is retained, never block
	follower := Applier{Dst: NewMemory()}
	for {
		recs, err := sub.Next(stop)
		if err != nil {
			t.Fatal(err)
		}
		if recs == nil {
			break
		}
		for _, r := range recs {
			op, err := DecodeOp(r.Payload)
			if err != nil {
				t.Fatal(err)
			}
			if err := follower.Apply(op); err != nil {
				t.Fatalf("follower apply: %v", err)
			}
		}
	}
	got, err := follower.Dst.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	for _, ep := range eps {
		if len(got.Messages[ep]) != 1 {
			t.Fatalf("follower has %d messages on %s, want 1", len(got.Messages[ep]), ep)
		}
		want := jms.TextBody(ep + "-1")
		if got.Messages[ep][0].Msg.Body.(jms.TextBody) != want {
			t.Errorf("follower %s message = %v, want %v", ep, got.Messages[ep][0].Msg.Body, want)
		}
	}
	if len(got.Subscriptions) != 1 {
		t.Errorf("follower has %d subscriptions, want 1", len(got.Subscriptions))
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}
