// Package store provides the stable-storage substrate a JMS provider
// needs for its reliability guarantees: "Persistent messages are
// guaranteed to eventually arrive at its destination(s) even if failures
// (system or communication) occur" and durable subscriptions must
// "retain all the messages while the subscriber was inactive" (§2.1).
//
// Two implementations are provided: an in-memory stable store (survives
// the simulated crash of the broker that owns it, because the crash only
// discards the broker's volatile state) and a file-backed write-ahead
// log that survives real process restarts. The reference provider
// (internal/broker) records every persistent message and every durable
// subscription here, and rebuilds its durable state from Snapshot after
// an injected crash — the paper's §5 future-work feature.
package store

import (
	"fmt"
	"sort"
	"sync"

	"jmsharness/internal/jms"
)

// RecordID identifies a stored message within its store.
type RecordID uint64

// SubscriptionRecord is the durable-subscription metadata that must
// survive failures.
type SubscriptionRecord struct {
	// ClientID scopes the subscription name, as in JMS.
	ClientID string
	// Name is the application-chosen subscription name.
	Name string
	// Topic is the topic subscribed to.
	Topic string
	// Selector is the subscription's message selector ("" for none); it
	// is part of the durable subscription's identity.
	Selector string
}

// Key returns the identity key of the subscription.
func (r SubscriptionRecord) Key() string { return r.ClientID + ":" + r.Name }

// StoredMessage pairs a stored message with its record ID.
type StoredMessage struct {
	ID  RecordID
	Msg *jms.Message
	// Delivered records that the message was handed to a consumer at
	// least once before the snapshot. Recovery uses it to set the
	// JMSRedelivered flag on messages that survive a crash because they
	// were delivered but never acknowledged.
	Delivered bool
}

// State is a point-in-time snapshot of durable state, used for recovery.
type State struct {
	// Messages maps an endpoint (queue or durable-subscription
	// identifier) to its pending persistent messages in arrival order.
	Messages map[string][]StoredMessage
	// Subscriptions lists the durable subscriptions.
	Subscriptions []SubscriptionRecord
}

// Store is stable storage for a provider's durable state. All methods
// are safe for concurrent use.
type Store interface {
	// AddMessage durably records msg as pending on endpoint.
	AddMessage(endpoint string, msg *jms.Message) (RecordID, error)
	// RemoveMessage durably removes a previously added message (on
	// acknowledge/commit). Removing an unknown ID is an error.
	RemoveMessage(endpoint string, id RecordID) error
	// MarkDelivered durably records that the message was handed to a
	// consumer, so a post-crash redelivery can carry the JMSRedelivered
	// flag. Marking an unknown ID is a no-op (the record may have been
	// acknowledged concurrently); marking twice is idempotent.
	MarkDelivered(endpoint string, id RecordID) error
	// AddSubscription durably records a durable subscription.
	AddSubscription(sub SubscriptionRecord) error
	// RemoveSubscription durably deletes a durable subscription and any
	// messages pending for it.
	RemoveSubscription(clientID, name string) error
	// Snapshot returns the current durable state. The returned state
	// shares no mutable storage with the store.
	Snapshot() (*State, error)
	// Close releases resources. The store must not be used afterwards.
	Close() error
}

// Staged is an optional Store extension for pipelined producers.
// AddMessageStaged behaves like AddMessage except that it returns as
// soon as the record is ordered (applied to in-memory state and queued
// for commit); the returned wait closure blocks until the record is
// durable and must be called exactly once. Callers that need the
// blocking contract simply call wait immediately. Every store in this
// package implements it; stores whose AddMessage is already
// synchronous return a no-op wait.
// RemoveMessageStaged is the same split for acknowledgements: the
// remove is applied and queued, and the wait closure blocks until it
// is durable. A session acknowledging a batch of messages stages every
// remove first and then waits on all of them, so N acks share one
// group commit instead of paying N sequential fsync waits.
type Staged interface {
	AddMessageStaged(endpoint string, msg *jms.Message) (RecordID, func() error, error)
	RemoveMessageStaged(endpoint string, id RecordID) (func() error, error)
}

// noWait is the wait closure of stores whose AddMessage is durable (or
// as durable as it ever gets) before staging returns.
var noWait = func() error { return nil }

// Memory is an in-memory Store. It models the stable storage of a
// simulated provider: a broker crash discards the broker, not its
// Memory store, so recovery semantics can be tested without disk I/O.
type Memory struct {
	mu     sync.Mutex
	nextID RecordID
	msgs   map[string]map[RecordID]*jms.Message
	deliv  map[string]map[RecordID]bool
	order  map[string][]RecordID
	subs   map[string]SubscriptionRecord
	closed bool
}

// NewMemory returns an empty in-memory store.
func NewMemory() *Memory {
	return &Memory{
		msgs:  map[string]map[RecordID]*jms.Message{},
		deliv: map[string]map[RecordID]bool{},
		order: map[string][]RecordID{},
		subs:  map[string]SubscriptionRecord{},
	}
}

var (
	_ Store  = (*Memory)(nil)
	_ Staged = (*Memory)(nil)
)

// AddMessageStaged implements Staged. A Memory store has no commit
// latency, so staging is the whole operation.
func (m *Memory) AddMessageStaged(endpoint string, msg *jms.Message) (RecordID, func() error, error) {
	id, err := m.AddMessage(endpoint, msg)
	if err != nil {
		return 0, nil, err
	}
	return id, noWait, nil
}

// RemoveMessageStaged implements Staged. A Memory store has no commit
// latency, so staging is the whole operation.
func (m *Memory) RemoveMessageStaged(endpoint string, id RecordID) (func() error, error) {
	if err := m.RemoveMessage(endpoint, id); err != nil {
		return nil, err
	}
	return noWait, nil
}

// AddMessage implements Store.
func (m *Memory) AddMessage(endpoint string, msg *jms.Message) (RecordID, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return 0, fmt.Errorf("store: %w", jms.ErrClosed)
	}
	m.nextID++
	id := m.nextID
	if m.msgs[endpoint] == nil {
		m.msgs[endpoint] = map[RecordID]*jms.Message{}
	}
	m.msgs[endpoint][id] = msg.Clone()
	m.order[endpoint] = append(m.order[endpoint], id)
	return id, nil
}

// RemoveMessage implements Store.
func (m *Memory) RemoveMessage(endpoint string, id RecordID) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return fmt.Errorf("store: %w", jms.ErrClosed)
	}
	eps, ok := m.msgs[endpoint]
	if !ok {
		return fmt.Errorf("store: remove from unknown endpoint %q", endpoint)
	}
	if _, ok := eps[id]; !ok {
		return fmt.Errorf("store: remove unknown record %d on %q", id, endpoint)
	}
	delete(eps, id)
	if d, ok := m.deliv[endpoint]; ok {
		delete(d, id)
	}
	return nil
}

// MarkDelivered implements Store.
func (m *Memory) MarkDelivered(endpoint string, id RecordID) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return fmt.Errorf("store: %w", jms.ErrClosed)
	}
	if _, ok := m.msgs[endpoint][id]; !ok {
		return nil // acknowledged concurrently; nothing to mark
	}
	if m.deliv[endpoint] == nil {
		m.deliv[endpoint] = map[RecordID]bool{}
	}
	m.deliv[endpoint][id] = true
	return nil
}

// AddSubscription implements Store.
func (m *Memory) AddSubscription(sub SubscriptionRecord) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return fmt.Errorf("store: %w", jms.ErrClosed)
	}
	m.subs[sub.Key()] = sub
	return nil
}

// RemoveSubscription implements Store.
func (m *Memory) RemoveSubscription(clientID, name string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return fmt.Errorf("store: %w", jms.ErrClosed)
	}
	key := clientID + ":" + name
	sub, ok := m.subs[key]
	if !ok {
		return fmt.Errorf("store: %w: %s", jms.ErrUnknownSubscription, key)
	}
	delete(m.subs, key)
	// Drop pending messages for the subscription's endpoint.
	endpoint := "sub:" + sub.ClientID + ":" + sub.Name
	delete(m.msgs, endpoint)
	delete(m.deliv, endpoint)
	delete(m.order, endpoint)
	return nil
}

// Snapshot implements Store.
func (m *Memory) Snapshot() (*State, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return nil, fmt.Errorf("store: %w", jms.ErrClosed)
	}
	st := &State{Messages: map[string][]StoredMessage{}}
	for ep, ids := range m.order {
		live := m.msgs[ep]
		var out []StoredMessage
		for _, id := range ids {
			if msg, ok := live[id]; ok {
				out = append(out, StoredMessage{ID: id, Msg: msg.Clone(), Delivered: m.deliv[ep][id]})
			}
		}
		if len(out) > 0 {
			st.Messages[ep] = out
		}
	}
	for _, sub := range m.subs {
		st.Subscriptions = append(st.Subscriptions, sub)
	}
	sort.Slice(st.Subscriptions, func(i, j int) bool {
		return st.Subscriptions[i].Key() < st.Subscriptions[j].Key()
	})
	return st, nil
}

// Close implements Store.
func (m *Memory) Close() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.closed = true
	return nil
}
