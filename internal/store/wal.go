package store

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sync"

	"jmsharness/internal/jms"
)

// WAL is a file-backed Store built on a write-ahead log. Every mutation
// is appended as a checksummed record and fsynced (when Sync is
// enabled), so durable state survives process crashes; OpenWAL replays
// the log, tolerating a torn final record.
//
// Record framing: uvarint payload length | payload | crc32(payload).
// Payload: 1 type byte followed by type-specific fields in the shared
// binary encoding (jms.Encoder).
type WAL struct {
	mu     sync.Mutex
	f      *os.File
	path   string
	sync   bool
	mirror *Memory // in-memory mirror for reads and snapshotting
	nextID RecordID
	closed bool
	// remap translates mirror record IDs to WAL record IDs so the two
	// stay consistent across compaction. The WAL assigns its own IDs.
	ids map[string]map[RecordID]RecordID
}

// Record type tags.
const (
	recAddMessage byte = iota + 1
	recRemoveMessage
	recAddSubscription
	recRemoveSubscription
	recMarkDelivered
)

// WALOptions configures OpenWAL.
type WALOptions struct {
	// Sync forces an fsync after every record, matching the durability
	// of a real persistent-mode provider. Disable for unit tests only.
	Sync bool
}

// OpenWAL opens (or creates) the log at path, replaying existing records
// to rebuild durable state.
func OpenWAL(path string, opts WALOptions) (*WAL, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: opening WAL %s: %w", path, err)
	}
	w := &WAL{
		f:      f,
		path:   path,
		sync:   opts.Sync,
		mirror: NewMemory(),
		ids:    map[string]map[RecordID]RecordID{},
	}
	if err := w.replay(); err != nil {
		_ = f.Close()
		return nil, err
	}
	return w, nil
}

var _ Store = (*WAL)(nil)

// replay scans the log, applying records to the mirror. A torn final
// record (short read or bad checksum at the tail) truncates the log to
// the last good record, mirroring standard WAL recovery.
func (w *WAL) replay() error {
	if _, err := w.f.Seek(0, io.SeekStart); err != nil {
		return fmt.Errorf("store: seeking WAL: %w", err)
	}
	data, err := io.ReadAll(w.f)
	if err != nil {
		return fmt.Errorf("store: reading WAL: %w", err)
	}
	pos := 0
	goodEnd := 0
	for pos < len(data) {
		payload, next, ok := readFrame(data, pos)
		if !ok {
			break // torn tail
		}
		if err := w.apply(payload); err != nil {
			return fmt.Errorf("store: WAL record at offset %d: %w", pos, err)
		}
		pos = next
		goodEnd = next
	}
	if goodEnd < len(data) {
		if err := w.f.Truncate(int64(goodEnd)); err != nil {
			return fmt.Errorf("store: truncating torn WAL tail: %w", err)
		}
	}
	if _, err := w.f.Seek(int64(goodEnd), io.SeekStart); err != nil {
		return fmt.Errorf("store: seeking WAL end: %w", err)
	}
	return nil
}

// readFrame parses one frame starting at pos, returning the payload and
// the offset after the frame. ok is false for a truncated or corrupt
// frame.
func readFrame(data []byte, pos int) (payload []byte, next int, ok bool) {
	n, sz := binary.Uvarint(data[pos:])
	if sz <= 0 {
		return nil, 0, false
	}
	start := pos + sz
	end := start + int(n)
	if n > uint64(len(data)) || end+4 > len(data) {
		return nil, 0, false
	}
	payload = data[start:end]
	want := binary.LittleEndian.Uint32(data[end : end+4])
	if crc32.ChecksumIEEE(payload) != want {
		return nil, 0, false
	}
	return payload, end + 4, true
}

// apply interprets one record payload against the mirror.
func (w *WAL) apply(payload []byte) error {
	if len(payload) == 0 {
		return errors.New("empty record")
	}
	d := jms.NewDecoder(payload[1:])
	switch payload[0] {
	case recAddMessage:
		id := RecordID(d.Uvarint())
		endpoint := d.String()
		var msg jms.Message
		msg.DecodeFrom(d)
		if err := d.Err(); err != nil {
			return err
		}
		mirrorID, err := w.mirror.AddMessage(endpoint, &msg)
		if err != nil {
			return err
		}
		w.mapID(endpoint, id, mirrorID)
		if id > w.nextID {
			w.nextID = id
		}
	case recRemoveMessage:
		id := RecordID(d.Uvarint())
		endpoint := d.String()
		if err := d.Err(); err != nil {
			return err
		}
		mirrorID, ok := w.lookupID(endpoint, id)
		if !ok {
			return fmt.Errorf("remove of unknown record %d on %q", id, endpoint)
		}
		if err := w.mirror.RemoveMessage(endpoint, mirrorID); err != nil {
			return err
		}
	case recMarkDelivered:
		id := RecordID(d.Uvarint())
		endpoint := d.String()
		if err := d.Err(); err != nil {
			return err
		}
		if mirrorID, ok := w.lookupID(endpoint, id); ok {
			if err := w.mirror.MarkDelivered(endpoint, mirrorID); err != nil {
				return err
			}
		}
	case recAddSubscription:
		sub := SubscriptionRecord{
			ClientID: d.String(), Name: d.String(), Topic: d.String(), Selector: d.String(),
		}
		if err := d.Err(); err != nil {
			return err
		}
		if err := w.mirror.AddSubscription(sub); err != nil {
			return err
		}
	case recRemoveSubscription:
		clientID, name := d.String(), d.String()
		if err := d.Err(); err != nil {
			return err
		}
		if err := w.mirror.RemoveSubscription(clientID, name); err != nil {
			return err
		}
	default:
		return fmt.Errorf("unknown record type %d", payload[0])
	}
	return nil
}

func (w *WAL) mapID(endpoint string, walID, mirrorID RecordID) {
	if w.ids[endpoint] == nil {
		w.ids[endpoint] = map[RecordID]RecordID{}
	}
	w.ids[endpoint][walID] = mirrorID
}

func (w *WAL) lookupID(endpoint string, walID RecordID) (RecordID, bool) {
	m, ok := w.ids[endpoint]
	if !ok {
		return 0, false
	}
	id, ok := m[walID]
	return id, ok
}

// appendRecord frames, writes and optionally syncs one record. Callers
// hold w.mu.
func (w *WAL) appendRecord(payload []byte) error {
	frame := binary.AppendUvarint(nil, uint64(len(payload)))
	frame = append(frame, payload...)
	frame = binary.LittleEndian.AppendUint32(frame, crc32.ChecksumIEEE(payload))
	if _, err := w.f.Write(frame); err != nil {
		return fmt.Errorf("store: appending WAL record: %w", err)
	}
	if w.sync {
		if err := w.f.Sync(); err != nil {
			return fmt.Errorf("store: syncing WAL: %w", err)
		}
	}
	return nil
}

// AddMessage implements Store.
func (w *WAL) AddMessage(endpoint string, msg *jms.Message) (RecordID, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return 0, fmt.Errorf("store: %w", jms.ErrClosed)
	}
	w.nextID++
	id := w.nextID
	e := jms.NewEncoder(make([]byte, 0, 64+msg.BodySize()))
	e.Byte(recAddMessage)
	e.Uvarint(uint64(id))
	e.String(endpoint)
	msg.EncodeTo(e)
	if err := w.appendRecord(e.Bytes()); err != nil {
		return 0, err
	}
	mirrorID, err := w.mirror.AddMessage(endpoint, msg)
	if err != nil {
		return 0, err
	}
	w.mapID(endpoint, id, mirrorID)
	return id, nil
}

// RemoveMessage implements Store.
func (w *WAL) RemoveMessage(endpoint string, id RecordID) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return fmt.Errorf("store: %w", jms.ErrClosed)
	}
	mirrorID, ok := w.lookupID(endpoint, id)
	if !ok {
		return fmt.Errorf("store: remove unknown record %d on %q", id, endpoint)
	}
	if err := w.mirror.RemoveMessage(endpoint, mirrorID); err != nil {
		return err
	}
	e := jms.NewEncoder(make([]byte, 0, 32))
	e.Byte(recRemoveMessage)
	e.Uvarint(uint64(id))
	e.String(endpoint)
	return w.appendRecord(e.Bytes())
}

// MarkDelivered implements Store.
func (w *WAL) MarkDelivered(endpoint string, id RecordID) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return fmt.Errorf("store: %w", jms.ErrClosed)
	}
	mirrorID, ok := w.lookupID(endpoint, id)
	if !ok {
		return nil // acknowledged concurrently; nothing to mark
	}
	if err := w.mirror.MarkDelivered(endpoint, mirrorID); err != nil {
		return err
	}
	e := jms.NewEncoder(make([]byte, 0, 32))
	e.Byte(recMarkDelivered)
	e.Uvarint(uint64(id))
	e.String(endpoint)
	return w.appendRecord(e.Bytes())
}

// AddSubscription implements Store.
func (w *WAL) AddSubscription(sub SubscriptionRecord) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return fmt.Errorf("store: %w", jms.ErrClosed)
	}
	if err := w.mirror.AddSubscription(sub); err != nil {
		return err
	}
	e := jms.NewEncoder(make([]byte, 0, 48))
	e.Byte(recAddSubscription)
	e.String(sub.ClientID)
	e.String(sub.Name)
	e.String(sub.Topic)
	e.String(sub.Selector)
	return w.appendRecord(e.Bytes())
}

// RemoveSubscription implements Store.
func (w *WAL) RemoveSubscription(clientID, name string) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return fmt.Errorf("store: %w", jms.ErrClosed)
	}
	if err := w.mirror.RemoveSubscription(clientID, name); err != nil {
		return err
	}
	e := jms.NewEncoder(make([]byte, 0, 32))
	e.Byte(recRemoveSubscription)
	e.String(clientID)
	e.String(name)
	return w.appendRecord(e.Bytes())
}

// Snapshot implements Store. The snapshot's record IDs are WAL record
// IDs, valid for RemoveMessage on this store.
func (w *WAL) Snapshot() (*State, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return nil, fmt.Errorf("store: %w", jms.ErrClosed)
	}
	st, err := w.mirror.Snapshot()
	if err != nil {
		return nil, err
	}
	// Translate mirror IDs back to WAL IDs.
	for ep, msgs := range st.Messages {
		reverse := map[RecordID]RecordID{}
		for walID, mirrorID := range w.ids[ep] {
			reverse[mirrorID] = walID
		}
		for i := range msgs {
			walID, ok := reverse[msgs[i].ID]
			if !ok {
				return nil, fmt.Errorf("store: mirror record %d on %q has no WAL id", msgs[i].ID, ep)
			}
			msgs[i].ID = walID
		}
	}
	return st, nil
}

// Compact rewrites the log to contain only live state, bounding log
// growth. Record IDs remain valid.
func (w *WAL) Compact() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return fmt.Errorf("store: %w", jms.ErrClosed)
	}
	st, err := w.mirror.Snapshot()
	if err != nil {
		return err
	}
	tmpPath := w.path + ".compact"
	tmp, err := os.Create(tmpPath)
	if err != nil {
		return fmt.Errorf("store: creating compaction file: %w", err)
	}
	defer os.Remove(tmpPath)
	writeRec := func(payload []byte) error {
		frame := binary.AppendUvarint(nil, uint64(len(payload)))
		frame = append(frame, payload...)
		frame = binary.LittleEndian.AppendUint32(frame, crc32.ChecksumIEEE(payload))
		_, err := tmp.Write(frame)
		return err
	}
	for _, sub := range st.Subscriptions {
		e := jms.NewEncoder(nil)
		e.Byte(recAddSubscription)
		e.String(sub.ClientID)
		e.String(sub.Name)
		e.String(sub.Topic)
		e.String(sub.Selector)
		if err := writeRec(e.Bytes()); err != nil {
			_ = tmp.Close()
			return fmt.Errorf("store: compacting: %w", err)
		}
	}
	reverse := map[string]map[RecordID]RecordID{}
	for ep, m := range w.ids {
		reverse[ep] = map[RecordID]RecordID{}
		for walID, mirrorID := range m {
			reverse[ep][mirrorID] = walID
		}
	}
	for ep, msgs := range st.Messages {
		for _, sm := range msgs {
			walID := reverse[ep][sm.ID]
			e := jms.NewEncoder(make([]byte, 0, 64+sm.Msg.BodySize()))
			e.Byte(recAddMessage)
			e.Uvarint(uint64(walID))
			e.String(ep)
			sm.Msg.EncodeTo(e)
			if err := writeRec(e.Bytes()); err != nil {
				_ = tmp.Close()
				return fmt.Errorf("store: compacting: %w", err)
			}
			if sm.Delivered {
				e := jms.NewEncoder(make([]byte, 0, 32))
				e.Byte(recMarkDelivered)
				e.Uvarint(uint64(walID))
				e.String(ep)
				if err := writeRec(e.Bytes()); err != nil {
					_ = tmp.Close()
					return fmt.Errorf("store: compacting: %w", err)
				}
			}
		}
	}
	if err := tmp.Sync(); err != nil {
		_ = tmp.Close()
		return fmt.Errorf("store: syncing compaction file: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("store: closing compaction file: %w", err)
	}
	if err := os.Rename(tmpPath, w.path); err != nil {
		return fmt.Errorf("store: installing compacted WAL: %w", err)
	}
	if err := w.f.Close(); err != nil {
		return fmt.Errorf("store: closing old WAL: %w", err)
	}
	f, err := os.OpenFile(w.path, os.O_RDWR|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("store: reopening compacted WAL: %w", err)
	}
	w.f = f
	return nil
}

// Close implements Store.
func (w *WAL) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return nil
	}
	w.closed = true
	if err := w.f.Close(); err != nil {
		return fmt.Errorf("store: closing WAL: %w", err)
	}
	return nil
}
