package store

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"jmsharness/internal/jms"
	"jmsharness/internal/obs"
)

// WAL is a file-backed Store built on a write-ahead log. Every mutation
// is appended as a checksummed record and made durable (when Sync is
// enabled) before the mutating call returns; OpenWAL replays the log,
// tolerating a torn final record.
//
// Durability is group-committed: mutating calls apply their record to
// the in-memory mirror under the store lock, hand the encoded record to
// a committer goroutine, and block until the batch containing their
// record has been written and fsynced. Concurrent writers therefore
// share one write+fsync instead of paying one each — the classic group
// commit — without weakening the contract that AddMessage does not
// return before its record is on disk. Record order in the log matches
// mirror-apply order (both happen under the store lock), so replay
// reconstructs exactly the mirrored state.
//
// Record framing: uvarint payload length | payload | crc32(payload).
// Payload: 1 type byte followed by type-specific fields in the shared
// binary encoding (jms.Encoder).
type WAL struct {
	path string
	sync bool

	mu     sync.Mutex
	f      *os.File // swapped by Compact; committer access is ordered via reqCh
	mirror *Memory  // in-memory mirror for reads and snapshotting
	nextID RecordID
	closed bool
	// failMu guards failed separately from mu because the committer
	// records commit errors while a mu holder may be blocked waiting on
	// the committer itself — Compact waits on its flush barrier under
	// mu, and a mutator can block sending into a full reqCh under mu.
	// If the committer took mu to set failed, either state would be a
	// deadlock that wedges the WAL and everything behind it.
	failMu sync.Mutex
	// failed is the sticky first commit error: once a write or fsync
	// fails the log's tail is suspect, so every later mutation is
	// refused rather than risking divergence between mirror and disk.
	// Snapshot is refused too: the mirror may hold records whose commit
	// failed — state the caller was explicitly told is not durable.
	failed error
	// app applies records to the mirror, translating WAL record IDs to
	// mirror IDs so the two stay consistent across compaction. The WAL
	// assigns its own IDs.
	app Applier
	// stream, when set, receives every committed record payload from
	// the group-commit loop — after the batch is durable, before its
	// waiters are released — so replication followers never see a
	// record that a crash could still lose.
	stream *Stream
	// ownsStream marks the WAL responsible for closing stream. A WAL
	// opened as one shard of a ShardedWAL shares the stream with its
	// siblings, and the sharded wrapper closes it exactly once.
	ownsStream bool
	// sharedID, when set, is a record-ID source shared with sibling
	// shards: AddMessage draws from it instead of the private nextID so
	// IDs are unique and monotonic across the whole sharded store, which
	// is what lets recovery order records from different shard files by
	// a single global sequence.
	sharedID *atomic.Uint64

	// reqCh feeds the committer goroutine. Sends happen only under mu,
	// which makes closing the channel in Close safe and gives the log
	// the same total order as the mirror.
	reqCh chan walCommit
	// committerDone is closed when the committer goroutine has drained
	// reqCh and exited.
	committerDone chan struct{}

	met walMetrics
}

// walCommit is one record awaiting group commit. A nil payload is a
// flush barrier: it carries no bytes but its done channel fires only
// after everything enqueued before it is durable.
type walCommit struct {
	payload []byte
	done    chan error
}

// walMetrics instruments the committer (metric names under "wal.*").
type walMetrics struct {
	batch      *obs.Histogram // records per group commit
	syncNs     *obs.Histogram // fsync latency, ns
	commitWait *obs.Histogram // AddMessage wait for durability, ns
	records    *obs.Counter   // records appended
}

// CommitBatchBounds are the bucket upper bounds for the
// "wal.commit_batch" histogram: powers of two spanning 1..1024 records
// per fsync.
func CommitBatchBounds() []int64 {
	out := make([]int64, 0, 11)
	for b := int64(1); b <= 1024; b *= 2 {
		out = append(out, b)
	}
	return out
}

// maxCommitBatch bounds how many records one group commit may coalesce,
// keeping a single batch's buffer (and the latency of the callers at
// its head) bounded under extreme writer counts.
const maxCommitBatch = 512

// WALOptions configures OpenWAL.
type WALOptions struct {
	// Sync forces an fsync per commit batch, matching the durability of
	// a real persistent-mode provider. Disable for unit tests only.
	Sync bool
	// Metrics receives the WAL's instruments ("wal.commit_batch",
	// "wal.sync_ns", "wal.records"). Nil means a private registry.
	Metrics *obs.Registry
	// Stream, when non-nil, receives every committed record payload
	// (replayed history first, then live records from the group-commit
	// loop) for replication followers to subscribe to.
	Stream *Stream
}

// OpenWAL opens (or creates) the log at path, replaying existing records
// to rebuild durable state.
func OpenWAL(path string, opts WALOptions) (*WAL, error) {
	return openWAL(path, opts, nil, true)
}

// openWAL is the shared constructor: sharedID and ownsStream distinguish
// a standalone WAL from one shard of a ShardedWAL.
func openWAL(path string, opts WALOptions, sharedID *atomic.Uint64, ownsStream bool) (*WAL, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: opening WAL %s: %w", path, err)
	}
	reg := opts.Metrics
	if reg == nil {
		reg = obs.NewRegistry()
	}
	w := &WAL{
		path:          path,
		sync:          opts.Sync,
		f:             f,
		mirror:        NewMemory(),
		stream:        opts.Stream,
		ownsStream:    ownsStream,
		sharedID:      sharedID,
		reqCh:         make(chan walCommit, maxCommitBatch),
		committerDone: make(chan struct{}),
		met: walMetrics{
			batch:      reg.Histogram("wal.commit_batch", CommitBatchBounds()),
			syncNs:     reg.Histogram("wal.sync_ns", nil),
			commitWait: reg.Histogram("wal.commit_wait_ns", nil),
			records:    reg.Counter("wal.records"),
		},
	}
	w.app.Dst = w.mirror
	if err := w.replay(); err != nil {
		_ = f.Close()
		return nil, err
	}
	go w.commitLoop()
	return w, nil
}

var _ Store = (*WAL)(nil)

// replay scans the log, applying records to the mirror. A torn final
// record (short read or bad checksum at the tail) truncates the log to
// the last good record, mirroring standard WAL recovery.
func (w *WAL) replay() error {
	if _, err := w.f.Seek(0, io.SeekStart); err != nil {
		return fmt.Errorf("store: seeking WAL: %w", err)
	}
	data, err := io.ReadAll(w.f)
	if err != nil {
		return fmt.Errorf("store: reading WAL: %w", err)
	}
	pos := 0
	goodEnd := 0
	var replayed [][]byte
	for pos < len(data) {
		payload, next, ok := readFrame(data, pos)
		if !ok {
			break // torn tail
		}
		if err := w.apply(payload); err != nil {
			return fmt.Errorf("store: WAL record at offset %d: %w", pos, err)
		}
		if w.stream != nil {
			replayed = append(replayed, payload)
		}
		pos = next
		goodEnd = next
	}
	if w.stream != nil {
		// Seed the stream with the durable history so a follower that
		// resyncs from offset zero receives the full state.
		w.stream.Publish(replayed...)
	}
	if goodEnd < len(data) {
		if err := w.f.Truncate(int64(goodEnd)); err != nil {
			return fmt.Errorf("store: truncating torn WAL tail: %w", err)
		}
	}
	if _, err := w.f.Seek(int64(goodEnd), io.SeekStart); err != nil {
		return fmt.Errorf("store: seeking WAL end: %w", err)
	}
	return nil
}

// readFrame parses one frame starting at pos, returning the payload and
// the offset after the frame. ok is false for a truncated or corrupt
// frame.
func readFrame(data []byte, pos int) (payload []byte, next int, ok bool) {
	n, sz := binary.Uvarint(data[pos:])
	if sz <= 0 {
		return nil, 0, false
	}
	if n > uint64(len(data)) {
		return nil, 0, false
	}
	start := pos + sz
	end := start + int(n)
	if end+4 > len(data) {
		return nil, 0, false
	}
	payload = data[start:end]
	want := binary.LittleEndian.Uint32(data[end : end+4])
	if crc32.ChecksumIEEE(payload) != want {
		return nil, 0, false
	}
	return payload, end + 4, true
}

// appendFrame appends one framed record to buf and returns the extended
// buffer. Reusing buf across records amortises the frame-encoding
// allocations that a per-record binary.AppendUvarint(nil, …) would pay.
func appendFrame(buf, payload []byte) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(payload)))
	buf = append(buf, payload...)
	return binary.LittleEndian.AppendUint32(buf, crc32.ChecksumIEEE(payload))
}

// apply interprets one record payload against the mirror.
func (w *WAL) apply(payload []byte) error {
	op, err := DecodeOp(payload)
	if err != nil {
		return err
	}
	if err := w.app.Apply(op); err != nil {
		return err
	}
	if op.Kind == OpAddMessage && op.ID > w.nextID {
		w.nextID = op.ID
	}
	if op.Kind == OpAddMessage && w.sharedID != nil {
		// Raise the shared global sequence to at least this record's ID
		// so IDs allocated after recovery stay above every replayed
		// record in every shard.
		for {
			cur := w.sharedID.Load()
			if uint64(op.ID) <= cur || w.sharedID.CompareAndSwap(cur, uint64(op.ID)) {
				break
			}
		}
	}
	return nil
}

// nextRecordID allocates the next message record ID. Callers hold w.mu.
func (w *WAL) nextRecordID() RecordID {
	if w.sharedID != nil {
		return RecordID(w.sharedID.Add(1))
	}
	w.nextID++
	return w.nextID
}

// commitLoop is the committer goroutine: it drains reqCh, coalescing
// every record available (up to maxCommitBatch) into a single
// write+fsync, then releases all of the batch's waiters at once. It
// must never acquire w.mu: waiters can hold w.mu while blocked on the
// committer (see failMu), so it reports errors via setFailed only.
func (w *WAL) commitLoop() {
	defer close(w.committerDone)
	var frame []byte       // reused frame-encoding buffer
	var published [][]byte // reused stream-publication scratch
	// sticky is the committer's copy of the first commit error. A
	// failed write can leave a torn frame mid-log, and replay stops at
	// the first bad frame — so appending records already buffered in
	// reqCh past that hole would acknowledge writes that silently
	// vanish on recovery. Once set, every later dequeued commit is
	// refused with the original error instead of written.
	var sticky error
	pending := make([]walCommit, 0, maxCommitBatch)
	for req := range w.reqCh {
		pending = append(pending[:0], req)
	drain:
		for len(pending) < maxCommitBatch {
			select {
			case more, ok := <-w.reqCh:
				if !ok {
					break drain
				}
				pending = append(pending, more)
			default:
				break drain
			}
		}
		err := sticky
		if err == nil {
			frame = frame[:0]
			records := 0
			for _, c := range pending {
				if c.payload == nil {
					continue // flush barrier
				}
				frame = appendFrame(frame, c.payload)
				records++
			}
			if records > 0 {
				if _, werr := w.f.Write(frame); werr != nil {
					err = fmt.Errorf("store: appending WAL records: %w", werr)
				} else if w.sync {
					start := time.Now()
					if serr := w.f.Sync(); serr != nil {
						err = fmt.Errorf("store: syncing WAL: %w", serr)
					}
					w.met.syncNs.ObserveDuration(time.Since(start))
				}
				w.met.batch.Observe(int64(records))
				w.met.records.Add(int64(records))
			}
			if err != nil {
				sticky = err
				w.setFailed(err)
			} else if w.stream != nil && records > 0 {
				// Publish the now-durable batch before releasing its
				// waiters: a caller observing its own write complete can
				// rely on the record already being in the stream, which
				// is what lets semi-synchronous replication wait on the
				// stream's LastSeq after a store call returns.
				published = published[:0]
				for _, c := range pending {
					if c.payload != nil {
						published = append(published, c.payload)
					}
				}
				w.stream.Publish(published...)
			}
		}
		for _, c := range pending {
			c.done <- err
		}
	}
}

// commit enqueues one encoded record (or a nil-payload barrier) for
// group commit. Callers hold w.mu for the enqueue — guaranteeing log
// order matches mirror order — and must release it before waiting on
// the returned channel.
func (w *WAL) commitLocked(payload []byte) chan error {
	done := make(chan error, 1)
	w.reqCh <- walCommit{payload: payload, done: done}
	return done
}

// setFailed records the sticky first commit error. Called from the
// committer, so it must not touch w.mu (see failMu).
func (w *WAL) setFailed(err error) {
	w.failMu.Lock()
	if w.failed == nil {
		w.failed = err
	}
	w.failMu.Unlock()
}

// failedErr returns the sticky commit error, or nil.
func (w *WAL) failedErr() error {
	w.failMu.Lock()
	defer w.failMu.Unlock()
	return w.failed
}

// checkOpenLocked verifies the WAL accepts mutations. Callers hold w.mu.
func (w *WAL) checkOpenLocked() error {
	if w.closed {
		return fmt.Errorf("store: %w", jms.ErrClosed)
	}
	return w.failedErr()
}

// encPool recycles record-payload buffers across mutations.
var encPool = sync.Pool{
	New: func() any { b := make([]byte, 0, 256); return &b },
}

// putEnc returns a payload buffer to the pool, dropping oversized ones
// so a single huge message body does not pin memory forever.
func putEnc(buf *[]byte) {
	if cap(*buf) <= 1<<16 {
		*buf = (*buf)[:0]
		encPool.Put(buf)
	}
}

// AddMessage implements Store.
func (w *WAL) AddMessage(endpoint string, msg *jms.Message) (RecordID, error) {
	id, wait, err := w.AddMessageStaged(endpoint, msg)
	if err != nil {
		return 0, err
	}
	if err := wait(); err != nil {
		return 0, err
	}
	return id, nil
}

// AddMessageStaged implements Staged: the record is applied to the
// mirror and enqueued for group commit, but the call returns before it
// is durable. The returned wait closure blocks until the record's batch
// is on disk (call it exactly once). Staging under w.mu keeps log order
// equal to mirror order exactly as the blocking path does; only the
// durability wait moves out, which is what lets a pipelined producer
// keep many appends in flight inside one fsync domain.
func (w *WAL) AddMessageStaged(endpoint string, msg *jms.Message) (RecordID, func() error, error) {
	buf := encPool.Get().(*[]byte)
	w.mu.Lock()
	if err := w.checkOpenLocked(); err != nil {
		w.mu.Unlock()
		putEnc(buf)
		return 0, nil, err
	}
	id := w.nextRecordID()
	e := jms.NewEncoder(*buf)
	AppendOp(e, Op{Kind: OpAddMessage, ID: id, Endpoint: endpoint, Msg: msg})
	mirrorID, err := w.mirror.AddMessage(endpoint, msg)
	if err != nil {
		if w.sharedID == nil {
			w.nextID--
		}
		w.mu.Unlock()
		putEnc(buf)
		return 0, nil, err
	}
	w.app.Map(endpoint, id, mirrorID)
	done := w.commitLocked(e.Bytes())
	w.mu.Unlock()
	enc := e.Bytes()
	wait := func() error {
		// The wait below is the "WAL-commit wait" hop of a message's
		// distributed trace: how long the producer's send blocked on the
		// group committer making the record durable.
		waitStart := time.Now()
		err := <-done
		w.met.commitWait.ObserveDuration(time.Since(waitStart))
		*buf = enc
		putEnc(buf)
		return err
	}
	return id, wait, nil
}

// RemoveMessage implements Store.
func (w *WAL) RemoveMessage(endpoint string, id RecordID) error {
	wait, err := w.RemoveMessageStaged(endpoint, id)
	if err != nil {
		return err
	}
	return wait()
}

// RemoveMessageStaged implements Staged: the remove is applied to the
// mirror and enqueued for group commit, but the call returns before it
// is durable. The returned wait closure blocks until the remove's
// batch is on disk (call it exactly once). A session acknowledging N
// messages stages them all and then waits, folding N fsync waits into
// one group commit.
func (w *WAL) RemoveMessageStaged(endpoint string, id RecordID) (func() error, error) {
	buf := encPool.Get().(*[]byte)
	w.mu.Lock()
	if err := w.checkOpenLocked(); err != nil {
		w.mu.Unlock()
		putEnc(buf)
		return nil, err
	}
	mirrorID, ok := w.app.Lookup(endpoint, id)
	if !ok {
		w.mu.Unlock()
		putEnc(buf)
		return nil, fmt.Errorf("store: remove unknown record %d on %q", id, endpoint)
	}
	if err := w.mirror.RemoveMessage(endpoint, mirrorID); err != nil {
		w.mu.Unlock()
		putEnc(buf)
		return nil, err
	}
	delete(w.app.ids[endpoint], id)
	e := jms.NewEncoder(*buf)
	AppendOp(e, Op{Kind: OpRemoveMessage, ID: id, Endpoint: endpoint})
	done := w.commitLocked(e.Bytes())
	w.mu.Unlock()
	enc := e.Bytes()
	wait := func() error {
		err := <-done
		*buf = enc
		putEnc(buf)
		return err
	}
	return wait, nil
}

// MarkDelivered implements Store.
func (w *WAL) MarkDelivered(endpoint string, id RecordID) error {
	buf := encPool.Get().(*[]byte)
	w.mu.Lock()
	if err := w.checkOpenLocked(); err != nil {
		w.mu.Unlock()
		putEnc(buf)
		return err
	}
	mirrorID, ok := w.app.Lookup(endpoint, id)
	if !ok {
		w.mu.Unlock()
		putEnc(buf)
		return nil // acknowledged concurrently; nothing to mark
	}
	if err := w.mirror.MarkDelivered(endpoint, mirrorID); err != nil {
		w.mu.Unlock()
		putEnc(buf)
		return err
	}
	e := jms.NewEncoder(*buf)
	AppendOp(e, Op{Kind: OpMarkDelivered, ID: id, Endpoint: endpoint})
	done := w.commitLocked(e.Bytes())
	w.mu.Unlock()
	err := <-done
	*buf = e.Bytes()
	putEnc(buf)
	return err
}

// AddSubscription implements Store.
func (w *WAL) AddSubscription(sub SubscriptionRecord) error {
	buf := encPool.Get().(*[]byte)
	w.mu.Lock()
	if err := w.checkOpenLocked(); err != nil {
		w.mu.Unlock()
		putEnc(buf)
		return err
	}
	if err := w.mirror.AddSubscription(sub); err != nil {
		w.mu.Unlock()
		putEnc(buf)
		return err
	}
	e := jms.NewEncoder(*buf)
	AppendOp(e, Op{Kind: OpAddSubscription, Sub: sub})
	done := w.commitLocked(e.Bytes())
	w.mu.Unlock()
	err := <-done
	*buf = e.Bytes()
	putEnc(buf)
	return err
}

// RemoveSubscription implements Store.
func (w *WAL) RemoveSubscription(clientID, name string) error {
	buf := encPool.Get().(*[]byte)
	w.mu.Lock()
	if err := w.checkOpenLocked(); err != nil {
		w.mu.Unlock()
		putEnc(buf)
		return err
	}
	if err := w.mirror.RemoveSubscription(clientID, name); err != nil {
		w.mu.Unlock()
		putEnc(buf)
		return err
	}
	delete(w.app.ids, "sub:"+clientID+":"+name)
	e := jms.NewEncoder(*buf)
	AppendOp(e, Op{Kind: OpRemoveSubscription, ClientID: clientID, Name: name})
	done := w.commitLocked(e.Bytes())
	w.mu.Unlock()
	err := <-done
	*buf = e.Bytes()
	putEnc(buf)
	return err
}

// Snapshot implements Store. The snapshot's record IDs are WAL record
// IDs, valid for RemoveMessage on this store.
func (w *WAL) Snapshot() (*State, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return nil, fmt.Errorf("store: %w", jms.ErrClosed)
	}
	if err := w.failedErr(); err != nil {
		// A failed commit leaves its record in the mirror even though
		// the caller was told the write failed; serving that state
		// would present reads that were never durable.
		return nil, err
	}
	st, err := w.mirror.Snapshot()
	if err != nil {
		return nil, err
	}
	// Translate mirror IDs back to WAL IDs.
	for ep, msgs := range st.Messages {
		reverse := map[RecordID]RecordID{}
		for walID, mirrorID := range w.app.ids[ep] {
			reverse[mirrorID] = walID
		}
		for i := range msgs {
			walID, ok := reverse[msgs[i].ID]
			if !ok {
				return nil, fmt.Errorf("store: mirror record %d on %q has no WAL id", msgs[i].ID, ep)
			}
			msgs[i].ID = walID
		}
	}
	return st, nil
}

// barrier blocks until every record enqueued before the call is durable
// (or returns the sticky commit failure). ShardedWAL uses it to align
// all shards on a consistent cut before compacting any of them.
func (w *WAL) barrier() error {
	w.mu.Lock()
	if err := w.checkOpenLocked(); err != nil {
		w.mu.Unlock()
		return err
	}
	done := w.commitLocked(nil)
	w.mu.Unlock()
	return <-done
}

// Compact rewrites the log to contain only live state, bounding log
// growth. Record IDs remain valid.
func (w *WAL) Compact() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if err := w.checkOpenLocked(); err != nil {
		return err
	}
	// Flush the committer pipeline: everything applied to the mirror
	// must be in the old log before we snapshot and swap files,
	// otherwise an in-flight record could land in the new log twice or
	// reference state the compacted log no longer carries. Holding w.mu
	// blocks new enqueues while the barrier drains.
	if err := <-w.commitLocked(nil); err != nil {
		return err
	}
	st, err := w.mirror.Snapshot()
	if err != nil {
		return err
	}
	tmpPath := w.path + ".compact"
	tmp, err := os.Create(tmpPath)
	if err != nil {
		return fmt.Errorf("store: creating compaction file: %w", err)
	}
	defer os.Remove(tmpPath)
	var frame []byte
	writeRec := func(payload []byte) error {
		frame = appendFrame(frame[:0], payload)
		_, err := tmp.Write(frame)
		return err
	}
	for _, sub := range st.Subscriptions {
		e := jms.NewEncoder(nil)
		AppendOp(e, Op{Kind: OpAddSubscription, Sub: sub})
		if err := writeRec(e.Bytes()); err != nil {
			_ = tmp.Close()
			return fmt.Errorf("store: compacting: %w", err)
		}
	}
	reverse := map[string]map[RecordID]RecordID{}
	for ep, m := range w.app.ids {
		reverse[ep] = map[RecordID]RecordID{}
		for walID, mirrorID := range m {
			reverse[ep][mirrorID] = walID
		}
	}
	for ep, msgs := range st.Messages {
		for _, sm := range msgs {
			walID := reverse[ep][sm.ID]
			e := jms.NewEncoder(make([]byte, 0, 64+sm.Msg.BodySize()))
			AppendOp(e, Op{Kind: OpAddMessage, ID: walID, Endpoint: ep, Msg: sm.Msg})
			if err := writeRec(e.Bytes()); err != nil {
				_ = tmp.Close()
				return fmt.Errorf("store: compacting: %w", err)
			}
			if sm.Delivered {
				e := jms.NewEncoder(make([]byte, 0, 32))
				AppendOp(e, Op{Kind: OpMarkDelivered, ID: walID, Endpoint: ep})
				if err := writeRec(e.Bytes()); err != nil {
					_ = tmp.Close()
					return fmt.Errorf("store: compacting: %w", err)
				}
			}
		}
	}
	if err := tmp.Sync(); err != nil {
		_ = tmp.Close()
		return fmt.Errorf("store: syncing compaction file: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("store: closing compaction file: %w", err)
	}
	if err := os.Rename(tmpPath, w.path); err != nil {
		return fmt.Errorf("store: installing compacted WAL: %w", err)
	}
	if err := w.f.Close(); err != nil {
		return fmt.Errorf("store: closing old WAL: %w", err)
	}
	f, err := os.OpenFile(w.path, os.O_RDWR|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("store: reopening compacted WAL: %w", err)
	}
	// The committer observes the new file handle because its next batch
	// is ordered after this critical section: enqueues happen under
	// w.mu, and the channel send/receive pair carries the write.
	w.f = f
	return nil
}

// Close implements Store. Pending group commits are flushed before the
// file closes.
func (w *WAL) Close() error {
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return nil
	}
	w.closed = true
	// Safe: every send on reqCh happens under w.mu, and closed=true
	// stops new ones.
	close(w.reqCh)
	w.mu.Unlock()
	<-w.committerDone
	if w.stream != nil && w.ownsStream {
		w.stream.Close()
	}
	if err := w.f.Close(); err != nil {
		return fmt.Errorf("store: closing WAL: %w", err)
	}
	return nil
}
