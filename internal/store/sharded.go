package store

import (
	"fmt"
	"hash/fnv"
	"sort"
	"sync/atomic"

	"jmsharness/internal/jms"
)

// ShardedWAL is a segmented write-ahead log: N WAL shards, each with its
// own file, group-commit goroutine and fsync domain, striped by
// endpoint. Splitting the log turns the single-fsync funnel of a WAL
// into per-shard commit loops that sync in parallel, which is what the
// saturation experiment needs to push persistent sends past one disk
// queue's worth of throughput.
//
// Correctness relies on two invariants:
//
//   - Everything with an ordering relationship shares a shard. All
//     records of one endpoint — a message add, its delivered mark, its
//     remove, and (for durable subscriptions) the subscription record
//     itself, which hashes under the same "sub:<clientID>:<name>" key
//     the Op codec's EndpointOf produces — land in one shard, so each
//     shard's log replays its endpoints exactly as a single WAL would.
//
//   - Record IDs come from one global sequence shared by every shard
//     (see WAL.sharedID). Recovery raises the sequence to the maximum
//     ID found in any shard, so IDs stay unique and monotonic across
//     the whole store and the merged recovery state orders records by
//     a single global sequence.
//
// Shard files are named <path>.s<i>; the shard count is fixed at open
// time and must match across reopens — opening with a different count
// changes the endpoint striping and would strand records in files the
// new layout never reads.
type ShardedWAL struct {
	shards []*WAL
	stream *Stream
	seq    atomic.Uint64
}

// OpenSharded opens (or creates) a segmented WAL of n shards rooted at
// path, replaying every shard to rebuild durable state. All shards
// share opts.Metrics (their instruments aggregate under the same wal.*
// names — the group-commit batch histogram reports batches from every
// shard) and opts.Stream (committed records from all shards publish
// into the one replication feed).
func OpenSharded(path string, n int, opts WALOptions) (*ShardedWAL, error) {
	if n < 1 {
		return nil, fmt.Errorf("store: sharded WAL needs >= 1 shard, got %d", n)
	}
	s := &ShardedWAL{stream: opts.Stream}
	for i := 0; i < n; i++ {
		w, err := openWAL(shardPath(path, i), opts, &s.seq, false)
		if err != nil {
			for _, open := range s.shards {
				_ = open.Close()
			}
			return nil, err
		}
		s.shards = append(s.shards, w)
	}
	return s, nil
}

// shardPath names shard i's log file.
func shardPath(path string, i int) string { return fmt.Sprintf("%s.s%d", path, i) }

var (
	_ Store  = (*ShardedWAL)(nil)
	_ Staged = (*ShardedWAL)(nil)
)

// Shards returns the shard count.
func (s *ShardedWAL) Shards() int { return len(s.shards) }

// shardFor routes an endpoint to its shard. FNV-1a keeps the routing
// deterministic across reopens, which is what pins an endpoint's
// records to one file for the lifetime of the store.
func (s *ShardedWAL) shardFor(endpoint string) *WAL {
	if len(s.shards) == 1 {
		return s.shards[0]
	}
	h := fnv.New32a()
	_, _ = h.Write([]byte(endpoint))
	return s.shards[h.Sum32()%uint32(len(s.shards))]
}

// AddMessage implements Store.
func (s *ShardedWAL) AddMessage(endpoint string, msg *jms.Message) (RecordID, error) {
	return s.shardFor(endpoint).AddMessage(endpoint, msg)
}

// AddMessageStaged implements Staged.
func (s *ShardedWAL) AddMessageStaged(endpoint string, msg *jms.Message) (RecordID, func() error, error) {
	return s.shardFor(endpoint).AddMessageStaged(endpoint, msg)
}

// RemoveMessage implements Store.
func (s *ShardedWAL) RemoveMessage(endpoint string, id RecordID) error {
	return s.shardFor(endpoint).RemoveMessage(endpoint, id)
}

// RemoveMessageStaged implements Staged.
func (s *ShardedWAL) RemoveMessageStaged(endpoint string, id RecordID) (func() error, error) {
	return s.shardFor(endpoint).RemoveMessageStaged(endpoint, id)
}

// MarkDelivered implements Store.
func (s *ShardedWAL) MarkDelivered(endpoint string, id RecordID) error {
	return s.shardFor(endpoint).MarkDelivered(endpoint, id)
}

// AddSubscription implements Store. The record routes by the same
// endpoint key its messages will use, keeping a durable subscription
// and its backlog in one shard.
func (s *ShardedWAL) AddSubscription(sub SubscriptionRecord) error {
	return s.shardFor("sub:" + sub.ClientID + ":" + sub.Name).AddSubscription(sub)
}

// RemoveSubscription implements Store.
func (s *ShardedWAL) RemoveSubscription(clientID, name string) error {
	return s.shardFor("sub:"+clientID+":"+name).RemoveSubscription(clientID, name)
}

// Snapshot implements Store: the merge of every shard's snapshot.
// Endpoints are disjoint across shards, so the merge is a union;
// subscriptions re-sort by key so the merged order is deterministic
// regardless of shard layout.
func (s *ShardedWAL) Snapshot() (*State, error) {
	merged := &State{Messages: map[string][]StoredMessage{}}
	for _, w := range s.shards {
		st, err := w.Snapshot()
		if err != nil {
			return nil, err
		}
		for ep, msgs := range st.Messages {
			merged.Messages[ep] = msgs
		}
		merged.Subscriptions = append(merged.Subscriptions, st.Subscriptions...)
	}
	sort.Slice(merged.Subscriptions, func(i, j int) bool {
		return merged.Subscriptions[i].Key() < merged.Subscriptions[j].Key()
	})
	return merged, nil
}

// Compact rewrites every shard's log to live state only. A cross-shard
// barrier runs first: every shard flushes its commit pipeline before
// any shard rewrites its file, so the set of compacted logs reflects a
// single consistent cut — a caller whose writes (possibly spread over
// several shards) all returned before Compact finds every one of them
// in the compacted state, never a prefix.
func (s *ShardedWAL) Compact() error {
	for _, w := range s.shards {
		if err := w.barrier(); err != nil {
			return err
		}
	}
	for _, w := range s.shards {
		if err := w.Compact(); err != nil {
			return err
		}
	}
	return nil
}

// Close implements Store. Every shard flushes and closes; the shared
// stream (which no single shard owns) closes exactly once afterwards.
func (s *ShardedWAL) Close() error {
	var first error
	for _, w := range s.shards {
		if err := w.Close(); err != nil && first == nil {
			first = err
		}
	}
	if s.stream != nil {
		s.stream.Close()
	}
	return first
}
