package store

import (
	"errors"
	"fmt"
	"sync"

	"jmsharness/internal/jms"
)

// This file is the store half of destination replication: a committed
// mutation stream a follower can subscribe to, plus the shared record
// codec and an Applier that replays records against any Store. The WAL
// publishes into a Stream from its group-commit loop (so a record is
// only ever streamed after it is durable), and Streamed decorates the
// in-memory store with the same contract.

// OpKind tags one durable mutation. The values double as the WAL's
// on-disk record type bytes, so a WAL payload and a replication-stream
// payload are the same bytes.
type OpKind byte

const (
	OpAddMessage OpKind = iota + 1
	OpRemoveMessage
	OpAddSubscription
	OpRemoveSubscription
	OpMarkDelivered
)

// Op is one decoded durable mutation.
type Op struct {
	Kind OpKind
	// ID is the originating store's record ID for message ops. An
	// Applier maps it to the destination store's own ID space.
	ID       RecordID
	Endpoint string
	Msg      *jms.Message       // OpAddMessage only
	Sub      SubscriptionRecord // OpAddSubscription only
	ClientID string             // OpRemoveSubscription only
	Name     string             // OpRemoveSubscription only
}

// AppendOp encodes op into e in the shared record format: 1 type byte
// followed by type-specific fields.
func AppendOp(e *jms.Encoder, op Op) {
	e.Byte(byte(op.Kind))
	switch op.Kind {
	case OpAddMessage:
		e.Uvarint(uint64(op.ID))
		e.String(op.Endpoint)
		op.Msg.EncodeTo(e)
	case OpRemoveMessage, OpMarkDelivered:
		e.Uvarint(uint64(op.ID))
		e.String(op.Endpoint)
	case OpAddSubscription:
		e.String(op.Sub.ClientID)
		e.String(op.Sub.Name)
		e.String(op.Sub.Topic)
		e.String(op.Sub.Selector)
	case OpRemoveSubscription:
		e.String(op.ClientID)
		e.String(op.Name)
	}
}

// DecodeOp parses one record payload.
func DecodeOp(payload []byte) (Op, error) {
	if len(payload) == 0 {
		return Op{}, errors.New("store: empty record")
	}
	op := Op{Kind: OpKind(payload[0])}
	d := jms.NewDecoder(payload[1:])
	switch op.Kind {
	case OpAddMessage:
		op.ID = RecordID(d.Uvarint())
		op.Endpoint = d.String()
		var msg jms.Message
		msg.DecodeFrom(d)
		op.Msg = &msg
	case OpRemoveMessage, OpMarkDelivered:
		op.ID = RecordID(d.Uvarint())
		op.Endpoint = d.String()
	case OpAddSubscription:
		op.Sub = SubscriptionRecord{
			ClientID: d.String(), Name: d.String(), Topic: d.String(), Selector: d.String(),
		}
	case OpRemoveSubscription:
		op.ClientID, op.Name = d.String(), d.String()
	default:
		return Op{}, fmt.Errorf("store: unknown record type %d", payload[0])
	}
	if err := d.Err(); err != nil {
		return Op{}, err
	}
	return op, nil
}

// EndpointOf returns the endpoint a message op targets, or the durable
// subscription endpoint for subscription ops ("" when the op has no
// endpoint identity). Replication uses it to pick the op's follower.
func (op Op) EndpointOf() string {
	switch op.Kind {
	case OpAddMessage, OpRemoveMessage, OpMarkDelivered:
		return op.Endpoint
	case OpAddSubscription:
		return "sub:" + op.Sub.ClientID + ":" + op.Sub.Name
	case OpRemoveSubscription:
		return "sub:" + op.ClientID + ":" + op.Name
	}
	return ""
}

// Applier replays a stream of ops against Dst, translating the source
// store's record IDs into Dst's. It is the id-mapping core shared by
// WAL replay and replication followers. Not safe for concurrent use.
type Applier struct {
	Dst Store
	ids map[string]map[RecordID]RecordID
}

// Apply applies one op. Mark-delivered of an unknown record is a no-op
// (it may race an acknowledge, exactly as in Store.MarkDelivered);
// removing an unknown record is an error.
func (a *Applier) Apply(op Op) error {
	switch op.Kind {
	case OpAddMessage:
		dstID, err := a.Dst.AddMessage(op.Endpoint, op.Msg)
		if err != nil {
			return err
		}
		a.Map(op.Endpoint, op.ID, dstID)
	case OpRemoveMessage:
		dstID, ok := a.Lookup(op.Endpoint, op.ID)
		if !ok {
			return fmt.Errorf("store: remove of unknown record %d on %q", op.ID, op.Endpoint)
		}
		if err := a.Dst.RemoveMessage(op.Endpoint, dstID); err != nil {
			return err
		}
		delete(a.ids[op.Endpoint], op.ID)
	case OpMarkDelivered:
		if dstID, ok := a.Lookup(op.Endpoint, op.ID); ok {
			if err := a.Dst.MarkDelivered(op.Endpoint, dstID); err != nil {
				return err
			}
		}
	case OpAddSubscription:
		if err := a.Dst.AddSubscription(op.Sub); err != nil {
			return err
		}
	case OpRemoveSubscription:
		if err := a.Dst.RemoveSubscription(op.ClientID, op.Name); err != nil {
			return err
		}
		delete(a.ids, "sub:"+op.ClientID+":"+op.Name)
	default:
		return fmt.Errorf("store: unknown op kind %d", op.Kind)
	}
	return nil
}

// Map records a source→destination ID translation.
func (a *Applier) Map(endpoint string, src, dst RecordID) {
	if a.ids == nil {
		a.ids = map[string]map[RecordID]RecordID{}
	}
	if a.ids[endpoint] == nil {
		a.ids[endpoint] = map[RecordID]RecordID{}
	}
	a.ids[endpoint][src] = dst
}

// Lookup translates a source ID.
func (a *Applier) Lookup(endpoint string, src RecordID) (RecordID, bool) {
	m, ok := a.ids[endpoint]
	if !ok {
		return 0, false
	}
	id, ok := m[src]
	return id, ok
}

// Reset drops every translation, for a full resync.
func (a *Applier) Reset() { a.ids = nil }

// ErrStreamTrimmed reports that a subscriber's position was trimmed out
// of the stream's retained window; the subscriber must full-resync.
var ErrStreamTrimmed = errors.New("store: stream position trimmed")

// ErrStreamClosed reports the stream was closed.
var ErrStreamClosed = errors.New("store: stream closed")

// StreamRecord is one committed record with its stream sequence number.
// Sequence numbers start at 1 and are dense.
type StreamRecord struct {
	Seq     uint64
	Payload []byte // immutable after publication
}

// Stream is an in-order log of committed store records that followers
// subscribe to. Publishers append only records that are already durable
// in the source store, so a subscriber replaying the stream can never
// observe a record the source might lose.
type Stream struct {
	mu     sync.Mutex
	recs   []StreamRecord
	base   uint64 // highest trimmed-away sequence number; recs start at base+1
	bytes  int64  // total payload bytes retained
	subs   map[*StreamSub]struct{}
	closed bool
}

// NewStream returns an empty stream.
func NewStream() *Stream {
	return &Stream{subs: map[*StreamSub]struct{}{}}
}

// Publish appends payloads (copied) in order, assigning sequence
// numbers, and wakes subscribers. It must be called only after the
// records are committed in the source store.
func (s *Stream) Publish(payloads ...[]byte) {
	if len(payloads) == 0 {
		return
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	seq := s.base + uint64(len(s.recs))
	for _, p := range payloads {
		seq++
		cp := make([]byte, len(p))
		copy(cp, p)
		s.recs = append(s.recs, StreamRecord{Seq: seq, Payload: cp})
		s.bytes += int64(len(cp))
	}
	for sub := range s.subs {
		sub.wake()
	}
	s.mu.Unlock()
}

// LastSeq returns the sequence number of the newest published record
// (0 when nothing was ever published).
func (s *Stream) LastSeq() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.base + uint64(len(s.recs))
}

// Bytes returns the total payload bytes currently retained.
func (s *Stream) Bytes() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.bytes
}

// SizeOfRange returns the payload bytes of retained records in
// (after, LastSeq] — a follower's byte lag at position after.
func (s *Stream) SizeOfRange(after uint64) int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	var n int64
	for _, r := range s.recs {
		if r.Seq > after {
			n += int64(len(r.Payload))
		}
	}
	return n
}

// OldestRetained returns the highest trimmed-away sequence number:
// retained records start at OldestRetained()+1, and Subscribe at any
// position below it fails with ErrStreamTrimmed. Zero means the full
// history is retained.
func (s *Stream) OldestRetained() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.base
}

// TrimTo discards retained records with Seq ≤ seq. Subscribers behind
// the trim point get ErrStreamTrimmed and must full-resync.
func (s *Stream) TrimTo(seq uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if seq <= s.base {
		return
	}
	last := s.base + uint64(len(s.recs))
	if seq > last {
		seq = last
	}
	drop := int(seq - s.base)
	for _, r := range s.recs[:drop] {
		s.bytes -= int64(len(r.Payload))
	}
	s.recs = append([]StreamRecord(nil), s.recs[drop:]...)
	s.base = seq
}

// Subscribe returns a subscriber positioned just after sequence number
// after (0 replays from the beginning). Fails with ErrStreamTrimmed if
// that position is no longer retained.
func (s *Stream) Subscribe(after uint64) (*StreamSub, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, ErrStreamClosed
	}
	if after < s.base {
		return nil, fmt.Errorf("%w: want records after %d, retained start at %d", ErrStreamTrimmed, after, s.base+1)
	}
	sub := &StreamSub{s: s, next: after + 1, notify: make(chan struct{}, 1)}
	s.subs[sub] = struct{}{}
	return sub, nil
}

// Close wakes and invalidates all subscribers.
func (s *Stream) Close() {
	s.mu.Lock()
	s.closed = true
	for sub := range s.subs {
		sub.wake()
	}
	s.subs = map[*StreamSub]struct{}{}
	s.mu.Unlock()
}

// StreamSub is one subscriber's cursor into a Stream.
type StreamSub struct {
	s      *Stream
	next   uint64
	notify chan struct{}
}

func (sub *StreamSub) wake() {
	select {
	case sub.notify <- struct{}{}:
	default:
	}
}

// Next returns the batch of records after the cursor, advancing it.
// With no records pending it blocks until a publish, a Stream close, or
// a receive on stop. Returns (nil, nil) when stopped.
func (sub *StreamSub) Next(stop <-chan struct{}) ([]StreamRecord, error) {
	for {
		sub.s.mu.Lock()
		if sub.next <= sub.s.base {
			sub.s.mu.Unlock()
			return nil, ErrStreamTrimmed
		}
		start := int(sub.next - sub.s.base - 1)
		if start < len(sub.s.recs) {
			batch := sub.s.recs[start:]
			sub.next = sub.s.base + uint64(len(sub.s.recs)) + 1
			sub.s.mu.Unlock()
			return batch, nil
		}
		if sub.s.closed {
			sub.s.mu.Unlock()
			return nil, ErrStreamClosed
		}
		sub.s.mu.Unlock()
		select {
		case <-sub.notify:
		case <-stop:
			return nil, nil
		}
	}
}

// Close detaches the subscriber from the stream.
func (sub *StreamSub) Close() {
	sub.s.mu.Lock()
	delete(sub.s.subs, sub)
	sub.s.mu.Unlock()
}

// Streamed decorates a Store so every committed mutation is also
// published to a Stream, giving Memory-backed nodes the same
// replication feed the WAL produces from its group-commit loop. The
// publish happens after the inner call succeeds, so — like the WAL
// path — a streamed record is always durable at the source. Causally
// related records (an acknowledge can only follow the send that
// produced its ID) publish in causal order because each op publishes
// before its call returns.
type Streamed struct {
	inner Store
	s     *Stream
}

// NewStreamed wraps inner, publishing committed ops to s.
func NewStreamed(inner Store, s *Stream) *Streamed {
	return &Streamed{inner: inner, s: s}
}

var (
	_ Store  = (*Streamed)(nil)
	_ Staged = (*Streamed)(nil)
)

// Stream returns the stream mutations are published to.
func (t *Streamed) Stream() *Stream { return t.s }

func (t *Streamed) publish(op Op) {
	e := jms.NewEncoder(nil)
	AppendOp(e, op)
	t.s.Publish(e.Bytes())
}

// AddMessage implements Store.
func (t *Streamed) AddMessage(endpoint string, msg *jms.Message) (RecordID, error) {
	id, err := t.inner.AddMessage(endpoint, msg)
	if err != nil {
		return 0, err
	}
	t.publish(Op{Kind: OpAddMessage, ID: id, Endpoint: endpoint, Msg: msg})
	return id, nil
}

// AddMessageStaged implements Staged. The publish happens at staging
// time, not inside the wait closure: once staging returns, the broker
// may hand the message to a consumer whose acknowledge publishes a
// RemoveMessage op inline, and a follower must never see that remove
// before its add. Inner stores here are Memory-backed (WAL nodes
// publish from their own group-commit loop), so staging and durability
// coincide and the early publish keeps the decorator's contract.
func (t *Streamed) AddMessageStaged(endpoint string, msg *jms.Message) (RecordID, func() error, error) {
	st, ok := t.inner.(Staged)
	if !ok {
		id, err := t.AddMessage(endpoint, msg)
		if err != nil {
			return 0, nil, err
		}
		return id, noWait, nil
	}
	id, wait, err := st.AddMessageStaged(endpoint, msg)
	if err != nil {
		return 0, nil, err
	}
	t.publish(Op{Kind: OpAddMessage, ID: id, Endpoint: endpoint, Msg: msg})
	return id, wait, nil
}

// RemoveMessage implements Store.
func (t *Streamed) RemoveMessage(endpoint string, id RecordID) error {
	if err := t.inner.RemoveMessage(endpoint, id); err != nil {
		return err
	}
	t.publish(Op{Kind: OpRemoveMessage, ID: id, Endpoint: endpoint})
	return nil
}

// RemoveMessageStaged implements Staged. Like AddMessageStaged, the
// publish happens at staging time: the matching add was published at
// its own staging, so stream order still shows the add before the
// remove, and a later op on the same endpoint cannot overtake the
// remove on the stream.
func (t *Streamed) RemoveMessageStaged(endpoint string, id RecordID) (func() error, error) {
	st, ok := t.inner.(Staged)
	if !ok {
		if err := t.RemoveMessage(endpoint, id); err != nil {
			return nil, err
		}
		return noWait, nil
	}
	wait, err := st.RemoveMessageStaged(endpoint, id)
	if err != nil {
		return nil, err
	}
	t.publish(Op{Kind: OpRemoveMessage, ID: id, Endpoint: endpoint})
	return wait, nil
}

// MarkDelivered implements Store.
func (t *Streamed) MarkDelivered(endpoint string, id RecordID) error {
	if err := t.inner.MarkDelivered(endpoint, id); err != nil {
		return err
	}
	t.publish(Op{Kind: OpMarkDelivered, ID: id, Endpoint: endpoint})
	return nil
}

// AddSubscription implements Store.
func (t *Streamed) AddSubscription(sub SubscriptionRecord) error {
	if err := t.inner.AddSubscription(sub); err != nil {
		return err
	}
	t.publish(Op{Kind: OpAddSubscription, Sub: sub})
	return nil
}

// RemoveSubscription implements Store.
func (t *Streamed) RemoveSubscription(clientID, name string) error {
	if err := t.inner.RemoveSubscription(clientID, name); err != nil {
		return err
	}
	t.publish(Op{Kind: OpRemoveSubscription, ClientID: clientID, Name: name})
	return nil
}

// Snapshot implements Store.
func (t *Streamed) Snapshot() (*State, error) { return t.inner.Snapshot() }

// Close implements Store.
func (t *Streamed) Close() error {
	t.s.Close()
	return t.inner.Close()
}
