package chaos

import (
	"bytes"
	"io"
	"net"
	"sync"
	"testing"
	"time"
)

// echoServer accepts connections and echoes every byte back until the
// listener is closed.
func echoServer(t *testing.T) (addr string, stop func()) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			wg.Add(1)
			go func() {
				defer wg.Done()
				defer conn.Close()
				_, _ = io.Copy(conn, conn)
			}()
		}
	}()
	return ln.Addr().String(), func() {
		_ = ln.Close()
		wg.Wait()
	}
}

func roundTrip(t *testing.T, addr string, payload []byte) ([]byte, error) {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	defer conn.Close()
	_ = conn.SetDeadline(time.Now().Add(5 * time.Second))
	if _, err := conn.Write(payload); err != nil {
		return nil, err
	}
	got := make([]byte, len(payload))
	if _, err := io.ReadFull(conn, got); err != nil {
		return nil, err
	}
	return got, nil
}

// TestProxyTransparent checks that a proxy with no faults forwards
// traffic unchanged in both directions.
func TestProxyTransparent(t *testing.T) {
	addr, stop := echoServer(t)
	defer stop()
	p, err := New(Options{Target: addr, Seed: 1})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer p.Close()
	payload := bytes.Repeat([]byte("conform"), 1000)
	got, err := roundTrip(t, p.Addr(), payload)
	if err != nil {
		t.Fatalf("round trip: %v", err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("echo mismatch: got %d bytes", len(got))
	}
	if len(p.Events()) != 0 {
		t.Fatalf("clean proxy logged events: %q", p.Events())
	}
}

// TestProxyLatency checks that configured latency actually delays the
// round trip.
func TestProxyLatency(t *testing.T) {
	addr, stop := echoServer(t)
	defer stop()
	p, err := New(Options{Target: addr, Latency: 30 * time.Millisecond, Seed: 1})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer p.Close()
	start := time.Now()
	if _, err := roundTrip(t, p.Addr(), []byte("ping")); err != nil {
		t.Fatalf("round trip: %v", err)
	}
	// Both directions pay the latency at least once.
	if got := time.Since(start); got < 60*time.Millisecond {
		t.Fatalf("round trip took %v, want >= 60ms", got)
	}
}

// TestProxyPartitionAndHeal checks that a partition stalls traffic
// without losing it: bytes written during the black-hole arrive after
// Heal.
func TestProxyPartitionAndHeal(t *testing.T) {
	addr, stop := echoServer(t)
	defer stop()
	p, err := New(Options{Target: addr, Seed: 1})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer p.Close()

	conn, err := net.Dial("tcp", p.Addr())
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer conn.Close()
	_ = conn.SetDeadline(time.Now().Add(5 * time.Second))

	p.Partition(Both)
	if _, err := conn.Write([]byte("held")); err != nil {
		t.Fatalf("write during partition: %v", err)
	}
	// The echo must not arrive while partitioned.
	_ = conn.SetReadDeadline(time.Now().Add(50 * time.Millisecond))
	buf := make([]byte, 4)
	if _, err := conn.Read(buf); err == nil {
		t.Fatalf("read succeeded during partition")
	}
	p.Heal()
	_ = conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := io.ReadFull(conn, buf); err != nil {
		t.Fatalf("read after heal: %v", err)
	}
	if string(buf) != "held" {
		t.Fatalf("got %q after heal", buf)
	}
}

// TestProxyResetKillsConnections checks ResetAll tears down live
// connections so clients see a prompt error.
func TestProxyResetKillsConnections(t *testing.T) {
	addr, stop := echoServer(t)
	defer stop()
	p, err := New(Options{Target: addr, Seed: 1})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer p.Close()

	conn, err := net.Dial("tcp", p.Addr())
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer conn.Close()
	if _, err := roundTrip(t, p.Addr(), []byte("warm")); err != nil {
		t.Fatalf("warmup: %v", err)
	}
	p.ResetAll()
	_ = conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, err := conn.Read(make([]byte, 1)); err == nil {
		t.Fatalf("read succeeded after reset")
	}
}

// TestProxyTruncateTearsFrame checks an armed truncation lets at most
// the budgeted bytes through and then kills the connection.
func TestProxyTruncateTearsFrame(t *testing.T) {
	addr, stop := echoServer(t)
	defer stop()
	p, err := New(Options{Target: addr, Seed: 1})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer p.Close()

	conn, err := net.Dial("tcp", p.Addr())
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer conn.Close()
	_ = conn.SetDeadline(time.Now().Add(5 * time.Second))
	p.TruncateNext(3)
	if _, err := conn.Write([]byte("truncated-frame")); err != nil {
		t.Fatalf("write: %v", err)
	}
	got, err := io.ReadAll(conn)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if len(got) > 3 {
		t.Fatalf("got %d bytes through a 3-byte truncation: %q", len(got), got)
	}
}

// TestScheduleDeterministic is the chaos determinism guarantee: the
// same seed and schedule produce a byte-identical fault event log,
// regardless of traffic.
func TestScheduleDeterministic(t *testing.T) {
	schedule := []Fault{
		{At: 5 * time.Millisecond, Kind: FaultPartition, Dir: Both, Duration: 10 * time.Millisecond},
		{At: 10 * time.Millisecond, Kind: FaultTruncate, Bytes: 7},
		{At: 20 * time.Millisecond, Kind: FaultReset},
		{At: 25 * time.Millisecond, Kind: FaultPartition, Dir: Up, Duration: 5 * time.Millisecond},
	}
	run := func(withTraffic bool) string {
		addr, stop := echoServer(t)
		defer stop()
		p, err := New(Options{Target: addr, Seed: 42, Jitter: time.Millisecond, Schedule: schedule})
		if err != nil {
			t.Fatalf("New: %v", err)
		}
		if withTraffic {
			// Drive traffic through the proxy while faults fire; the log
			// must not depend on it.
			done := make(chan struct{})
			go func() {
				defer close(done)
				for i := 0; i < 20; i++ {
					conn, err := net.Dial("tcp", p.Addr())
					if err != nil {
						return
					}
					_ = conn.SetDeadline(time.Now().Add(100 * time.Millisecond))
					_, _ = conn.Write([]byte("noise"))
					_, _ = conn.Read(make([]byte, 5))
					_ = conn.Close()
					time.Sleep(2 * time.Millisecond)
				}
			}()
			<-done
		}
		// Let the schedule finish (last action heals at 30ms).
		time.Sleep(60 * time.Millisecond)
		log := p.EventLog()
		_ = p.Close()
		return log
	}
	quiet := run(false)
	noisy := run(true)
	if quiet != noisy {
		t.Fatalf("event log depends on traffic:\nquiet:\n%s\nnoisy:\n%s", quiet, noisy)
	}
	if quiet == "" {
		t.Fatalf("empty event log")
	}
	again := run(true)
	if again != quiet {
		t.Fatalf("event log not reproducible:\nfirst:\n%s\nsecond:\n%s", quiet, again)
	}
}
