// Package chaos implements a deterministic, seed-driven TCP
// fault-injection proxy. It sits between a wire client and a wire
// server (or any other TCP pair) and degrades the link on command or
// on a scripted schedule: added latency and jitter, bandwidth caps,
// per-direction black-holes (partitions), whole-proxy connection
// resets, and mid-frame byte truncation.
//
// The paper's harness measures providers under load; the group-
// communication literature it builds on treats partition and
// reconnection as the defining stress of a messaging system. This
// package is the repo's network-fault layer: internal/faults wraps
// *logical* provider behaviour, chaos wraps the *wire*.
//
// Determinism. Every injected fault is appended to an event log that
// records only the fault's parameters — never timestamps, connection
// counts, or anything else traffic-dependent — and scheduled faults
// are applied by a single goroutine in a fixed order. The same seed
// and schedule therefore produce a byte-identical Events() log, which
// is what lets a chaos scenario be replayed from its seed alone.
package chaos

import (
	"fmt"
	"io"
	"net"
	"sort"
	"strings"
	"sync"
	"time"

	"jmsharness/internal/stats"
)

// Direction selects which half of the duplex link a fault applies to.
// Up is client→server, Down is server→client.
type Direction int

// Directions. Both is the bitwise OR of Up and Down.
const (
	Up   Direction = 1 << iota // client → server
	Down                       // server → client
	Both = Up | Down
)

// String returns a stable, human-readable direction name.
func (d Direction) String() string {
	switch d {
	case Up:
		return "up"
	case Down:
		return "down"
	case Both:
		return "both"
	default:
		return fmt.Sprintf("dir(%d)", int(d))
	}
}

// FaultKind names a scheduled fault.
type FaultKind string

// Fault kinds.
const (
	// FaultPartition black-holes the given direction(s) for Duration:
	// the proxy stops forwarding but keeps the TCP connections alive,
	// so healed traffic resumes without loss.
	FaultPartition FaultKind = "partition"
	// FaultReset closes every live proxied connection, forcing clients
	// into their reconnect path.
	FaultReset FaultKind = "reset"
	// FaultTruncate lets Bytes bytes of the next forwarded chunk
	// through, then kills that connection — a torn frame.
	FaultTruncate FaultKind = "truncate"
)

// Fault is one scheduled fault. At is the offset from Start.
type Fault struct {
	At       time.Duration `json:"at"`
	Kind     FaultKind     `json:"kind"`
	Dir      Direction     `json:"dir,omitempty"`      // partition
	Duration time.Duration `json:"duration,omitempty"` // partition
	Bytes    int           `json:"bytes,omitempty"`    // truncate
}

// Options configures a Proxy.
type Options struct {
	// Target is the real server address to forward to.
	Target string
	// Listen is the proxy's own listen address; empty means
	// "127.0.0.1:0".
	Listen string
	// Latency is added to every forwarded chunk in each direction.
	Latency time.Duration
	// Jitter adds a uniform [0, Jitter) delay on top of Latency, drawn
	// from the seeded generator.
	Jitter time.Duration
	// BandwidthBps caps each direction of each connection at this many
	// bytes per second; zero means unlimited.
	BandwidthBps int
	// Seed drives the jitter generator.
	Seed uint64
	// Schedule is applied by a single goroutine after Start, in order
	// of At (ties broken by position), so the fault event log is a pure
	// function of the schedule.
	Schedule []Fault
}

// Proxy is a fault-injecting TCP forwarder.
type Proxy struct {
	opts Options
	ln   net.Listener

	mu       sync.Mutex
	conns    map[*proxyConn]struct{}
	healUp   chan struct{} // non-nil while up direction is partitioned
	healDown chan struct{} // non-nil while down direction is partitioned
	truncate int           // pending truncate budget; -1 when unarmed
	events   []string
	closed   bool

	rmu sync.Mutex
	rng *stats.RNG

	stop chan struct{}
	wg   sync.WaitGroup
}

// New starts a proxy forwarding to opts.Target and begins applying the
// schedule. Close releases it.
func New(opts Options) (*Proxy, error) {
	if opts.Target == "" {
		return nil, fmt.Errorf("chaos: no target address")
	}
	listen := opts.Listen
	if listen == "" {
		listen = "127.0.0.1:0"
	}
	ln, err := net.Listen("tcp", listen)
	if err != nil {
		return nil, fmt.Errorf("chaos: listening on %s: %w", listen, err)
	}
	p := &Proxy{
		opts:     opts,
		ln:       ln,
		conns:    map[*proxyConn]struct{}{},
		truncate: -1,
		rng:      stats.NewRNG(opts.Seed),
		stop:     make(chan struct{}),
	}
	p.wg.Add(1)
	go func() {
		defer p.wg.Done()
		p.acceptLoop()
	}()
	if len(opts.Schedule) > 0 {
		p.wg.Add(1)
		go func() {
			defer p.wg.Done()
			p.runSchedule(opts.Schedule)
		}()
	}
	return p, nil
}

// Addr returns the proxy's listen address — the address clients dial.
func (p *Proxy) Addr() string { return p.ln.Addr().String() }

// Close stops accepting, kills every live connection and waits for the
// pumps and the scheduler to exit.
func (p *Proxy) Close() error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil
	}
	p.closed = true
	// Heal any standing partition so parked pumps can observe the
	// closed sockets and exit.
	if p.healUp != nil {
		close(p.healUp)
		p.healUp = nil
	}
	if p.healDown != nil {
		close(p.healDown)
		p.healDown = nil
	}
	conns := make([]*proxyConn, 0, len(p.conns))
	for c := range p.conns {
		conns = append(conns, c)
	}
	p.mu.Unlock()
	close(p.stop)
	err := p.ln.Close()
	for _, c := range conns {
		c.kill()
	}
	p.wg.Wait()
	return err
}

// Partition black-holes the given direction(s) until Heal. The TCP
// connections stay up, so no in-flight bytes are lost — only delayed.
func (p *Proxy) Partition(dir Direction) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return
	}
	if dir&Up != 0 && p.healUp == nil {
		p.healUp = make(chan struct{})
	}
	if dir&Down != 0 && p.healDown == nil {
		p.healDown = make(chan struct{})
	}
	p.logLocked("partition dir=%s", dir)
}

// Heal ends every standing partition.
func (p *Proxy) Heal() {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.healUp != nil {
		close(p.healUp)
		p.healUp = nil
	}
	if p.healDown != nil {
		close(p.healDown)
		p.healDown = nil
	}
	p.logLocked("heal")
}

// ResetAll closes every live proxied connection — the network-level
// equivalent of yanking the cable mid-conversation.
func (p *Proxy) ResetAll() {
	p.mu.Lock()
	conns := make([]*proxyConn, 0, len(p.conns))
	for c := range p.conns {
		conns = append(conns, c)
	}
	p.logLocked("reset")
	p.mu.Unlock()
	for _, c := range conns {
		c.kill()
	}
}

// TruncateNext arms a one-shot truncation: the next forwarded chunk is
// cut to at most n bytes and its connection killed, tearing a frame.
func (p *Proxy) TruncateNext(n int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if n < 0 {
		n = 0
	}
	p.truncate = n
	p.logLocked("truncate bytes=%d", n)
}

// Events returns the fault event log so far: one line per injected
// fault, parameters only. For a fixed seed and schedule the log is
// byte-identical across runs.
func (p *Proxy) Events() []string {
	p.mu.Lock()
	defer p.mu.Unlock()
	return append([]string(nil), p.events...)
}

// EventLog returns Events joined by newlines.
func (p *Proxy) EventLog() string { return strings.Join(p.Events(), "\n") }

// ActiveConns reports the number of live proxied connections.
func (p *Proxy) ActiveConns() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.conns)
}

func (p *Proxy) logLocked(format string, args ...any) {
	p.events = append(p.events, fmt.Sprintf(format, args...))
}

// runSchedule applies the scripted faults in At order from a single
// goroutine. Partition heals are expanded into their own scheduled
// actions so the event log stays a pure function of the schedule.
func (p *Proxy) runSchedule(schedule []Fault) {
	type action struct {
		at   time.Duration
		seq  int // stable tie-break: schedule order, heals after applies
		run  func()
		name string
	}
	var actions []action
	for i, f := range schedule {
		f := f
		switch f.Kind {
		case FaultPartition:
			actions = append(actions, action{at: f.At, seq: 2 * i, run: func() { p.Partition(f.Dir) }})
			actions = append(actions, action{at: f.At + f.Duration, seq: 2*i + 1, run: p.Heal})
		case FaultReset:
			actions = append(actions, action{at: f.At, seq: 2 * i, run: p.ResetAll})
		case FaultTruncate:
			actions = append(actions, action{at: f.At, seq: 2 * i, run: func() { p.TruncateNext(f.Bytes) }})
		}
	}
	sort.SliceStable(actions, func(i, j int) bool {
		if actions[i].at != actions[j].at {
			return actions[i].at < actions[j].at
		}
		return actions[i].seq < actions[j].seq
	})
	start := time.Now()
	for _, a := range actions {
		delay := a.at - time.Since(start)
		if delay > 0 {
			t := time.NewTimer(delay)
			select {
			case <-t.C:
			case <-p.stop:
				t.Stop()
				return
			}
		}
		select {
		case <-p.stop:
			return
		default:
		}
		a.run()
	}
}

func (p *Proxy) acceptLoop() {
	for {
		client, err := p.ln.Accept()
		if err != nil {
			return
		}
		server, err := net.Dial("tcp", p.opts.Target)
		if err != nil {
			_ = client.Close()
			continue
		}
		c := &proxyConn{p: p, client: client, server: server}
		p.mu.Lock()
		if p.closed {
			p.mu.Unlock()
			c.kill()
			continue
		}
		p.conns[c] = struct{}{}
		p.mu.Unlock()
		p.wg.Add(2)
		go func() {
			defer p.wg.Done()
			c.pump(Up, client, server)
		}()
		go func() {
			defer p.wg.Done()
			c.pump(Down, server, client)
		}()
	}
}

// proxyConn is one proxied client↔server pair.
type proxyConn struct {
	p      *Proxy
	client net.Conn
	server net.Conn
	once   sync.Once
}

// kill closes both halves; the pumps then exit on read/write errors.
func (c *proxyConn) kill() {
	c.once.Do(func() {
		_ = c.client.Close()
		_ = c.server.Close()
		c.p.mu.Lock()
		delete(c.p.conns, c)
		c.p.mu.Unlock()
	})
}

// pump forwards one direction, applying shaping and faults per chunk.
func (c *proxyConn) pump(dir Direction, src, dst net.Conn) {
	defer c.kill()
	buf := make([]byte, 32<<10)
	for {
		n, err := src.Read(buf)
		if n > 0 {
			if !c.forward(dir, dst, buf[:n]) {
				return
			}
		}
		if err != nil {
			if err != io.EOF {
				return
			}
			// Half-close: propagate EOF but keep the reverse pump going.
			if cw, ok := dst.(*net.TCPConn); ok {
				_ = cw.CloseWrite()
			}
			return
		}
	}
}

// forward applies partition, latency/jitter, bandwidth and truncation
// to one chunk, then writes it. It reports false when the connection
// must die (truncation, write error, proxy shutdown).
func (c *proxyConn) forward(dir Direction, dst net.Conn, chunk []byte) bool {
	// Black-hole: park until healed. The loop re-checks because the
	// direction may be re-partitioned between wakeup and forwarding.
	for {
		c.p.mu.Lock()
		var heal chan struct{}
		if dir == Up {
			heal = c.p.healUp
		} else {
			heal = c.p.healDown
		}
		c.p.mu.Unlock()
		if heal == nil {
			break
		}
		select {
		case <-heal:
		case <-c.p.stop:
			return false
		}
	}
	if d := c.delay(); d > 0 {
		t := time.NewTimer(d)
		select {
		case <-t.C:
		case <-c.p.stop:
			t.Stop()
			return false
		}
	}
	if bps := c.p.opts.BandwidthBps; bps > 0 {
		d := time.Duration(len(chunk)) * time.Second / time.Duration(bps)
		if d > 0 {
			t := time.NewTimer(d)
			select {
			case <-t.C:
			case <-c.p.stop:
				t.Stop()
				return false
			}
		}
	}
	// One-shot truncation: write a prefix, then kill the connection.
	c.p.mu.Lock()
	trunc := c.p.truncate
	if trunc >= 0 {
		c.p.truncate = -1
	}
	c.p.mu.Unlock()
	if trunc >= 0 {
		if trunc > len(chunk) {
			trunc = len(chunk)
		}
		_, _ = dst.Write(chunk[:trunc])
		return false
	}
	_, err := dst.Write(chunk)
	return err == nil
}

// delay returns the latency + seeded jitter for one chunk.
func (c *proxyConn) delay() time.Duration {
	d := c.p.opts.Latency
	if j := c.p.opts.Jitter; j > 0 {
		c.p.rmu.Lock()
		d += time.Duration(c.p.rng.Float64() * float64(j))
		c.p.rmu.Unlock()
	}
	return d
}
