package model

import (
	"fmt"
	"strings"
)

// Property identifies one of the checked safety properties.
type Property string

// Checked properties. The numbered ones are the paper's §3.1 properties;
// "no-duplicates" is the acknowledgement-mode-aware extension.
const (
	PropDeliveryIntegrity Property = "delivery-integrity" // Property 1
	PropRequiredMessages  Property = "required-messages"  // Property 2
	PropMessageOrdering   Property = "message-ordering"   // Property 3
	PropMessagePriority   Property = "message-priority"   // Property 4
	PropExpiredMessages   Property = "expired-messages"   // Property 5
	PropNoDuplicates      Property = "no-duplicates"      // extension
)

// Violation is one detected breach of a safety property.
type Violation struct {
	// Property is the breached property.
	Property Property
	// Endpoint, Producer, Consumer and MsgUID locate the violation;
	// fields that do not apply are empty.
	Endpoint string
	Producer string
	Consumer string
	MsgUID   string
	// Detail is a human-readable description.
	Detail string
}

// String renders the violation for reports.
func (v Violation) String() string {
	var parts []string
	parts = append(parts, string(v.Property))
	if v.Endpoint != "" {
		parts = append(parts, "endpoint="+v.Endpoint)
	}
	if v.Producer != "" {
		parts = append(parts, "producer="+v.Producer)
	}
	if v.Consumer != "" {
		parts = append(parts, "consumer="+v.Consumer)
	}
	if v.MsgUID != "" {
		parts = append(parts, "msg="+v.MsgUID)
	}
	return fmt.Sprintf("%s: %s", strings.Join(parts, " "), v.Detail)
}

// PropertyResult summarises one property's check.
type PropertyResult struct {
	// Property is the property checked.
	Property Property
	// Checked counts the individual obligations examined (messages,
	// pairs, endpoints — property-specific).
	Checked int
	// Violations are the detected breaches.
	Violations []Violation
	// Skipped records why the property was not evaluated, if so.
	Skipped string
	// Detail carries property-specific measurements (e.g. per-priority
	// mean delays, expiry rates) for the report.
	Detail string
}

// OK reports whether the property held (or was skipped).
func (r PropertyResult) OK() bool { return len(r.Violations) == 0 }

// Report is the outcome of checking every safety property on a trace.
type Report struct {
	// Results holds one entry per property, in the order checked.
	Results []PropertyResult
}

// Violations returns all violations across properties.
func (r *Report) Violations() []Violation {
	var out []Violation
	for _, pr := range r.Results {
		out = append(out, pr.Violations...)
	}
	return out
}

// ViolatedProperties returns the distinct properties with violations,
// in check order.
func (r *Report) ViolatedProperties() []Property {
	var out []Property
	for _, pr := range r.Results {
		if len(pr.Violations) > 0 {
			out = append(out, pr.Property)
		}
	}
	return out
}

// OK reports whether every property held.
func (r *Report) OK() bool {
	for _, pr := range r.Results {
		if !pr.OK() {
			return false
		}
	}
	return true
}

// Result returns the result for the given property, if present.
func (r *Report) Result(p Property) (PropertyResult, bool) {
	for _, pr := range r.Results {
		if pr.Property == p {
			return pr, true
		}
	}
	return PropertyResult{}, false
}

// String renders a human-readable summary.
func (r *Report) String() string {
	var b strings.Builder
	for _, pr := range r.Results {
		status := "OK"
		if pr.Skipped != "" {
			status = "SKIPPED (" + pr.Skipped + ")"
		} else if !pr.OK() {
			status = fmt.Sprintf("FAIL (%d violations)", len(pr.Violations))
		}
		fmt.Fprintf(&b, "%-20s %-24s checked=%d", pr.Property, status, pr.Checked)
		if pr.Detail != "" {
			fmt.Fprintf(&b, "  %s", pr.Detail)
		}
		b.WriteByte('\n')
		for i, v := range pr.Violations {
			if i >= 10 {
				fmt.Fprintf(&b, "    ... and %d more\n", len(pr.Violations)-i)
				break
			}
			fmt.Fprintf(&b, "    %s\n", v)
		}
	}
	return b.String()
}
