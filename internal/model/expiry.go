package model

import (
	"fmt"
	"time"

	"jmsharness/internal/stats"
)

// ExpectationModel predicts whether a message with a given time-to-live
// should be delivered. The paper's deployed model is SimpleExpectation;
// §5 proposes the histogram- and normal-distribution models, which are
// implemented here as well ("More sophisticated models can be built
// either by constructing a histogram of message delays throughout the
// run period or by using a normal distribution for expected message
// delay").
type ExpectationModel interface {
	// Name labels the model in reports.
	Name() string
	// ProbDelivered returns the probability that a message sent with ttl
	// is delivered before expiring. A ttl of zero never expires.
	ProbDelivered(ttl time.Duration) float64
}

// SimpleExpectation is the paper's deployed model: "a possibly received
// message is expected to be delivered if the mean latency time is less
// than or equal to the time-to-live time of the message or when the
// message's time-to-live is 0; Otherwise, the message should not be
// delivered."
type SimpleExpectation struct {
	// MeanLatency is the run's mean message delay.
	MeanLatency time.Duration
}

var _ ExpectationModel = SimpleExpectation{}

// Name implements ExpectationModel.
func (SimpleExpectation) Name() string { return "simple" }

// ProbDelivered implements ExpectationModel with a step function.
func (m SimpleExpectation) ProbDelivered(ttl time.Duration) float64 {
	if ttl == 0 || ttl >= m.MeanLatency {
		return 1
	}
	return 0
}

// HistogramExpectation predicts delivery from the empirical delay
// distribution: the probability a message beats its time-to-live is the
// delay CDF at the ttl.
type HistogramExpectation struct {
	// Delays is the delay histogram in seconds.
	Delays *stats.Histogram
}

var _ ExpectationModel = HistogramExpectation{}

// Name implements ExpectationModel.
func (HistogramExpectation) Name() string { return "histogram" }

// ProbDelivered implements ExpectationModel.
func (m HistogramExpectation) ProbDelivered(ttl time.Duration) float64 {
	if ttl == 0 {
		return 1
	}
	if m.Delays == nil || m.Delays.Total() == 0 {
		return 1
	}
	return m.Delays.CDF(ttl.Seconds())
}

// NormalExpectation approximates the delay distribution with a normal
// distribution fitted to the run's mean and standard deviation.
type NormalExpectation struct {
	// MeanSeconds and StdDevSeconds parameterise the fitted normal.
	MeanSeconds   float64
	StdDevSeconds float64
}

var _ ExpectationModel = NormalExpectation{}

// Name implements ExpectationModel.
func (NormalExpectation) Name() string { return "normal" }

// ProbDelivered implements ExpectationModel.
func (m NormalExpectation) ProbDelivered(ttl time.Duration) float64 {
	if ttl == 0 {
		return 1
	}
	return stats.NormalCDF(ttl.Seconds(), m.MeanSeconds, m.StdDevSeconds)
}

// ExpiryOptions tunes the Property 5 check.
type ExpiryOptions struct {
	// Model predicts delivery; nil builds a SimpleExpectation from the
	// trace's observed mean delay (the paper's configuration).
	Model ExpectationModel
	// MaxExpiredDeliveredFrac bounds "the number of expired messages
	// that are delivered as a percentage of the number of expected
	// expired messages".
	MaxExpiredDeliveredFrac float64
	// MinLiveDeliveredFrac bounds from below "the number of non-expired
	// messages delivered as a percentage of the number of expected
	// non-expired messages".
	MinLiveDeliveredFrac float64
}

// DefaultExpiryOptions returns the thresholds used by the stock test
// configurations: at most 5% of expected-expired delivered, at least 95%
// of expected-live delivered.
func DefaultExpiryOptions() ExpiryOptions {
	return ExpiryOptions{MaxExpiredDeliveredFrac: 0.05, MinLiveDeliveredFrac: 0.95}
}

// MeanDelay computes the run's mean delivery delay in seconds, the input
// to the simple expectation model.
func MeanDelay(w *World) time.Duration {
	var s stats.Summary
	for _, deliveries := range w.DeliveriesByConsumer {
		for _, d := range deliveries {
			if send, ok := w.SendByUID[d.UID]; ok {
				s.Add(d.Time.Sub(send.Start).Seconds())
			}
		}
	}
	return time.Duration(s.Mean() * float64(time.Second))
}

// CheckExpiredMessages implements Property 5 over the possibly received
// messages (Definition 7) of each endpoint. Possibly-received scope is
// taken per (producer, endpoint) as the Property-2 bracket with
// exemptions disabled: messages the group demonstrably engaged with.
// Precise expiry testing is impossible black-box (the harness cannot see
// which messages expired inside the provider), hence the expectation
// model and the two percentage thresholds.
func CheckExpiredMessages(w *World, opts ExpiryOptions) PropertyResult {
	res := PropertyResult{Property: PropExpiredMessages}
	m := opts.Model
	if m == nil {
		m = SimpleExpectation{MeanLatency: MeanDelay(w)}
	}

	var expectedExpired, expiredDelivered, expectedLive, liveDelivered int
	sawTTL := false
	for _, id := range w.EndpointIDs() {
		ep := w.Endpoints[id]
		received := ep.ReceivedUIDs()
		for _, producer := range w.Producers(ep.Dest) {
			rs := BuildRequiredSet(w, producer, ep, RequiredOptions{})
			for _, s := range rs.Required {
				res.Checked++
				if s.TTL > 0 {
					sawTTL = true
				}
				if m.ProbDelivered(s.TTL) >= 0.5 {
					expectedLive++
					if received[s.UID] {
						liveDelivered++
					}
				} else {
					expectedExpired++
					if received[s.UID] {
						expiredDelivered++
					}
				}
			}
		}
	}
	if !sawTTL {
		res.Skipped = "no messages with a time-to-live in the trace"
		return res
	}

	if expectedExpired > 0 {
		frac := float64(expiredDelivered) / float64(expectedExpired)
		res.Detail = fmt.Sprintf("model=%s expired-delivered=%d/%d(%.1f%%)",
			m.Name(), expiredDelivered, expectedExpired, frac*100)
		if frac > opts.MaxExpiredDeliveredFrac {
			res.Violations = append(res.Violations, Violation{
				Property: PropExpiredMessages,
				Detail: fmt.Sprintf("%.1f%% of expected-expired messages were delivered (bound %.1f%%): time-to-live appears to be ignored",
					frac*100, opts.MaxExpiredDeliveredFrac*100),
			})
		}
	}
	if expectedLive > 0 {
		frac := float64(liveDelivered) / float64(expectedLive)
		res.Detail += fmt.Sprintf(" live-delivered=%d/%d(%.1f%%)", liveDelivered, expectedLive, frac*100)
		if frac < opts.MinLiveDeliveredFrac {
			res.Violations = append(res.Violations, Violation{
				Property: PropExpiredMessages,
				Detail: fmt.Sprintf("only %.1f%% of expected-live messages were delivered (bound %.1f%%): expiry appears over-eager",
					frac*100, opts.MinLiveDeliveredFrac*100),
			})
		}
	}
	return res
}
