package model

import (
	"fmt"
	"sort"

	"jmsharness/internal/ioa"
	"jmsharness/internal/jms"
	"jmsharness/internal/trace"
)

// Config selects and tunes the safety-property checks.
type Config struct {
	// AllowDuplicates relaxes the duplicate check for configurations
	// with dups-ok consumers.
	AllowDuplicates bool
	// Required tunes required-set construction (Property 2).
	Required RequiredOptions
	// Priority tunes the Property 4 check.
	Priority PriorityOptions
	// Expiry tunes the Property 5 check.
	Expiry ExpiryOptions
	// AutomatonCrossCheck additionally replays each per-stream FIFO
	// channel automaton (internal/ioa) as an independent derivation of
	// ordering + integrity. The offline checks are authoritative; the
	// automaton check exists to validate them against the formal model.
	AutomatonCrossCheck bool
}

// DefaultConfig returns the configuration used by the stock test suite.
func DefaultConfig() Config {
	return Config{
		Required:            RequiredOptions{ExemptExpiring: true},
		Priority:            DefaultPriorityOptions(),
		Expiry:              DefaultExpiryOptions(),
		AutomatonCrossCheck: true,
	}
}

// Check runs every safety property against a merged trace and returns
// the consolidated report.
func Check(tr *trace.Trace, cfg Config) (*Report, error) {
	if err := tr.Validate(); err != nil {
		return nil, fmt.Errorf("model: %w", err)
	}
	w, err := Extract(tr)
	if err != nil {
		return nil, err
	}
	return CheckWorld(w, cfg), nil
}

// CheckWorld runs every safety property against an extracted world.
func CheckWorld(w *World, cfg Config) *Report {
	report := &Report{}
	report.Results = append(report.Results,
		CheckDeliveryIntegrity(w),
		CheckNoDuplicates(w, cfg.AllowDuplicates),
		CheckRequiredMessages(w, cfg.Required),
		CheckMessageOrdering(w),
		CheckMessagePriority(w, cfg.Priority),
		CheckExpiredMessages(w, cfg.Expiry),
	)
	if cfg.AutomatonCrossCheck {
		report.Results = append(report.Results, CheckFIFOAutomata(w))
	}
	return report
}

// PropFIFOAutomaton labels the I/O-automaton cross-check result.
const PropFIFOAutomaton Property = "ioa-fifo-channel"

// channelState is the state of the per-stream FIFO channel automaton:
// the highest stream index sent and the highest delivered. A delivery is
// enabled iff its index is at most the highest sent (integrity) and
// strictly greater than the last delivered (FIFO, with loss permitted:
// skipped indices are messages the stream was allowed to drop outside
// the required bracket).
type channelState struct {
	sent      int
	delivered int
}

// FIFOChannelSpec returns the I/O-automaton specification of one
// reliable-FIFO-with-loss message stream, the building block of the
// formal JMS model (§2.2 relates JMS delivery to the GCS FIFO and
// integrity properties).
func FIFOChannelSpec(name string) *ioa.Spec[channelState] {
	return &ioa.Spec[channelState]{
		Name:    name,
		Initial: []channelState{{}},
		Signature: func(action string) ioa.Kind {
			switch action {
			case "send":
				return ioa.KindInput
			case "deliver":
				return ioa.KindOutput
			default:
				return 0
			}
		},
		Step: func(s channelState, a ioa.Action) []channelState {
			idx, ok := a.Param.(int)
			if !ok {
				return nil
			}
			switch a.Name {
			case "send":
				if idx == s.sent+1 {
					return []channelState{{sent: idx, delivered: s.delivered}}
				}
				return nil
			case "deliver":
				if idx <= s.sent && idx > s.delivered {
					return []channelState{{sent: s.sent, delivered: idx}}
				}
				return nil
			default:
				return nil
			}
		},
	}
}

// streamKey identifies one FIFO stream as observed by one consumer.
type streamKey struct {
	producer string
	dest     string
	priority jms.Priority
	mode     jms.DeliveryMode
	consumer string
}

// CheckFIFOAutomata projects the world onto per-stream traces and
// replays each against the FIFO channel automaton. A rejected trace is
// an ordering or integrity violation expressed in the formal model's
// own terms.
func CheckFIFOAutomata(w *World) PropertyResult {
	res := PropertyResult{Property: PropFIFOAutomaton}

	// Index every stream's sends by time order (equivalently seq order)
	// and assign stream-local indices 1..n.
	type sendRef struct {
		idx  int
		send Send
	}
	streamIndex := map[string]sendRef{} // UID -> stream index
	type prodStream struct {
		producer string
		dest     string
		priority jms.Priority
		mode     jms.DeliveryMode
	}
	counts := map[prodStream]int{}
	var producers []string
	for p := range w.SendsByProducer {
		producers = append(producers, p)
	}
	sort.Strings(producers)
	for _, p := range producers {
		var dests []string
		for d := range w.SendsByProducer[p] {
			dests = append(dests, d)
		}
		sort.Strings(dests)
		for _, d := range dests {
			for _, s := range w.SendsByProducer[p][d] {
				ps := prodStream{producer: p, dest: d, priority: s.Priority, mode: s.Mode}
				counts[ps]++
				streamIndex[s.UID] = sendRef{idx: counts[ps], send: s}
			}
		}
	}

	// Build each consumer-stream's action sequence: all of the stream's
	// sends (they precede any delivery of a later index by
	// construction), then that consumer's deliveries in delivery order.
	type consumerTrace struct {
		actions []ioa.Action
	}
	traces := map[streamKey]*consumerTrace{}
	for consumer, deliveries := range w.DeliveriesByConsumer {
		for _, d := range deliveries {
			ref, ok := streamIndex[d.UID]
			if !ok || d.Redelivered {
				continue
			}
			key := streamKey{
				producer: ref.send.Producer,
				dest:     ref.send.Dest,
				priority: ref.send.Priority,
				mode:     ref.send.Mode,
				consumer: consumer,
			}
			ct, ok := traces[key]
			if !ok {
				ct = &consumerTrace{}
				// Feed all sends of the stream first; the automaton only
				// requires that a delivery's send has happened, and every
				// send in the world did happen before its delivery.
				n := counts[prodStream{producer: key.producer, dest: key.dest, priority: key.priority, mode: key.mode}]
				for i := 1; i <= n; i++ {
					ct.actions = append(ct.actions, ioa.Action{Name: "send", Param: i})
				}
				traces[key] = ct
			}
			ct.actions = append(ct.actions, ioa.Action{Name: "deliver", Param: ref.idx})
		}
	}

	keys := make([]streamKey, 0, len(traces))
	for k := range traces {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		a, b := keys[i], keys[j]
		if a.producer != b.producer {
			return a.producer < b.producer
		}
		if a.dest != b.dest {
			return a.dest < b.dest
		}
		if a.consumer != b.consumer {
			return a.consumer < b.consumer
		}
		if a.priority != b.priority {
			return a.priority < b.priority
		}
		return a.mode < b.mode
	})
	for _, key := range keys {
		res.Checked++
		name := fmt.Sprintf("fifo[%s->%s pri=%d %s @%s]", key.producer, key.dest, key.priority, key.mode, key.consumer)
		spec := FIFOChannelSpec(name)
		if err := spec.CheckTrace(traces[key].actions); err != nil {
			res.Violations = append(res.Violations, Violation{
				Property: PropFIFOAutomaton,
				Producer: key.producer,
				Consumer: key.consumer,
				Detail:   err.Error(),
			})
		}
	}
	return res
}
