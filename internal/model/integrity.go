package model

import "fmt"

// CheckDeliveryIntegrity implements Property 1: "For each consumer c and
// each message m in c's Received Messages, m is also in the set
// Published Messages for some producer p." Beyond identity membership,
// the payload checksum and the destination are compared, so corruption
// and misrouting are caught as integrity violations too. A delivery of a
// message whose transactional send rolled back is a specific integrity
// violation: the provider leaked an uncommitted message. A delivery of a
// message whose non-transactional send threw is NOT a violation — JMS
// leaves the outcome of a failed send indeterminate (the provider may
// have accepted the message before the failure surfaced, e.g. a node
// crashing mid-publish after federating the message) — but the payload
// must still match what the producer attempted.
func CheckDeliveryIntegrity(w *World) PropertyResult {
	res := PropertyResult{Property: PropDeliveryIntegrity}
	for _, id := range w.EndpointIDs() {
		ep := w.Endpoints[id]
		for _, d := range ep.Deliveries {
			res.Checked++
			send, sent := w.SendByUID[d.UID]
			if !sent {
				attempt, attempted := w.AttemptedByUID[d.UID]
				if attempted && attempt.TxID == "" {
					// Failed plain send: delivery permitted, content checked.
					send = attempt
				} else {
					v := Violation{
						Property: PropDeliveryIntegrity,
						Endpoint: id,
						Consumer: d.Consumer,
						MsgUID:   d.UID,
					}
					if attempted {
						v.Producer = attempt.Producer
						v.Detail = fmt.Sprintf("message from uncommitted transaction %s was delivered", attempt.TxID)
					} else {
						v.Detail = "delivered message was never sent by any producer"
					}
					res.Violations = append(res.Violations, v)
					continue
				}
			}
			if d.Checksum != send.Checksum {
				res.Violations = append(res.Violations, Violation{
					Property: PropDeliveryIntegrity,
					Endpoint: id,
					Producer: send.Producer,
					Consumer: d.Consumer,
					MsgUID:   d.UID,
					Detail: fmt.Sprintf("payload corrupted in transit: sent checksum %08x, received %08x",
						send.Checksum, d.Checksum),
				})
			}
			if d.Dest != "" && send.Dest != "" && d.Dest != send.Dest {
				res.Violations = append(res.Violations, Violation{
					Property: PropDeliveryIntegrity,
					Endpoint: id,
					Producer: send.Producer,
					Consumer: d.Consumer,
					MsgUID:   d.UID,
					Detail:   fmt.Sprintf("misrouted: sent to %s, delivered from %s", send.Dest, d.Dest),
				})
			}
		}
	}
	return res
}

// CheckNoDuplicates is the acknowledgement-mode-aware extension the
// paper's §2.1 motivates: with lazy (dups-ok) acknowledgement
// "duplicate messages may be delivered", but in auto- and
// client-acknowledge modes a message must reach a consumer group at most
// once unless the provider flags the repeat as redelivered. Set
// allowDuplicates when the test configuration uses dups-ok consumers.
func CheckNoDuplicates(w *World, allowDuplicates bool) PropertyResult {
	res := PropertyResult{Property: PropNoDuplicates}
	if allowDuplicates {
		res.Skipped = "dups-ok acknowledgement configured"
		return res
	}
	for _, id := range w.EndpointIDs() {
		ep := w.Endpoints[id]
		seen := map[string]bool{}
		for _, d := range ep.Deliveries {
			res.Checked++
			if seen[d.UID] && !d.Redelivered {
				res.Violations = append(res.Violations, Violation{
					Property: PropNoDuplicates,
					Endpoint: id,
					Consumer: d.Consumer,
					MsgUID:   d.UID,
					Detail:   "message delivered more than once to the consumer group without a redelivered flag",
				})
			}
			seen[d.UID] = true
		}
	}
	return res
}
