package model

import (
	"fmt"

	"jmsharness/internal/jms"
)

// orderKey identifies a FIFO stream for Property 3: "Messages sent by a
// message producer with the same message priority and delivery mode and,
// on the same topic in the case of pub/sub messaging style, must be
// delivered in the same order as it was sent."
type orderKey struct {
	producer string
	dest     string
	priority jms.Priority
	mode     jms.DeliveryMode
}

// modeKey drops the delivery mode, for the cross-mode rule.
type modeKey struct {
	producer string
	dest     string
	priority jms.Priority
}

// CheckMessageOrdering implements Property 3 per consumer: "Take any
// message msg received by a message consumer and message msg' is the
// previous message received by the consumer that is from the same
// producer, on the same topic with the same message priority and
// delivery mode as msg. Ordering is preserved if msg' was published
// before msg." With per-producer sequence numbers, "published before"
// reduces to a sequence comparison.
//
// It also enforces the asymmetric cross-mode rule of §2.1: "messages
// sent in non-persistent mode may skip ahead of messages sent in
// persistent mode but the reverse is not permitted" — a persistent
// message must never overtake an earlier-sent non-persistent message of
// the same producer, destination and priority.
//
// Redelivered messages are exempt: redelivery legitimately replays
// earlier messages after later ones were seen.
func CheckMessageOrdering(w *World) PropertyResult {
	res := PropertyResult{Property: PropMessageOrdering}
	for consumer, deliveries := range w.DeliveriesByConsumer {
		lastSeq := map[orderKey]int64{}
		lastUID := map[orderKey]string{}
		// Highest persistent sequence delivered so far per stream
		// (mode-blind), for the cross-mode rule.
		maxPersistent := map[modeKey]int64{}
		maxPersistentUID := map[modeKey]string{}
		for _, d := range deliveries {
			send, ok := w.SendByUID[d.UID]
			if !ok {
				continue // integrity violation, reported by Property 1
			}
			if d.Redelivered {
				continue
			}
			res.Checked++
			key := orderKey{producer: send.Producer, dest: send.Dest, priority: send.Priority, mode: send.Mode}
			if prev, seen := lastSeq[key]; seen && send.Seq < prev {
				res.Violations = append(res.Violations, Violation{
					Property: PropMessageOrdering,
					Producer: send.Producer,
					Consumer: consumer,
					MsgUID:   d.UID,
					Detail: fmt.Sprintf("seq=%d delivered after seq=%d (%s) of the same stream (dest=%s pri=%d mode=%s)",
						send.Seq, prev, lastUID[key], send.Dest, send.Priority, send.Mode),
				})
			}
			if prev, seen := lastSeq[key]; !seen || send.Seq > prev {
				lastSeq[key] = send.Seq
				lastUID[key] = d.UID
			}

			mk := modeKey{producer: send.Producer, dest: send.Dest, priority: send.Priority}
			switch send.Mode {
			case jms.Persistent:
				if send.Seq > maxPersistent[mk] {
					maxPersistent[mk] = send.Seq
					maxPersistentUID[mk] = d.UID
				}
			case jms.NonPersistent:
				if hi := maxPersistent[mk]; hi > send.Seq {
					res.Violations = append(res.Violations, Violation{
						Property: PropMessageOrdering,
						Producer: send.Producer,
						Consumer: consumer,
						MsgUID:   maxPersistentUID[mk],
						Detail: fmt.Sprintf("persistent seq=%d overtook earlier non-persistent seq=%d (%s); the reverse skip is not permitted",
							hi, send.Seq, d.UID),
					})
				}
			}
		}
	}
	return res
}
