// Package model is the formal analysis model at the centre of the paper:
// a black-box specification of which messages a JMS provider is required
// to deliver, derived from the observable events of an execution trace.
//
// The package implements the paper's Definitions 1–7 (sent messages,
// received messages, next message, last close, last message, first
// message, possibly received messages) and safety Properties 1–5
// (delivery integrity, required messages, message ordering, message
// priority, expired messages), plus the extensions the paper names as
// future work: a duplicate-delivery check parameterised by
// acknowledgement mode, a candidate-pair priority model, and
// distribution-based expiry expectation models.
//
// Because views are not observable in JMS, the model "uses initial and
// final message deliveries to a receiver to mark changes of view": the
// required message set for a producer and an end-point is bracketed by
// the first and last messages actually received (Definitions 5–6), and
// everything the producer sent in between must have been delivered to
// some consumer of the group (Property 2). A consequence the paper
// points out — and which the checkers here preserve — is that a trivial
// provider that never delivers anything satisfies every safety property;
// performance analysis (internal/analysis) is what exposes it.
package model

import (
	"fmt"
	"sort"
	"time"

	"jmsharness/internal/jms"
	"jmsharness/internal/trace"
)

// Send is one sent message (Definition 1) in producer order.
type Send struct {
	// UID is the harness message identity.
	UID string
	// Seq is the per-producer sequence number.
	Seq int64
	// Producer is the logical producer.
	Producer string
	// Dest is the destination string ("queue:x" / "topic:y").
	Dest string
	// Priority, Mode and TTL are the send's quality-of-service
	// parameters.
	Priority jms.Priority
	Mode     jms.DeliveryMode
	TTL      time.Duration
	// Start is when the send/publish call started (delay is measured
	// from here, §3.2) and End when it returned.
	Start time.Time
	End   time.Time
	// BodyBytes and Checksum describe the payload.
	BodyBytes int
	Checksum  uint32
	// TxID is the enclosing transaction, if any.
	TxID string
}

// Delivery is one received message (Definition 2) in consumer order.
type Delivery struct {
	// UID is the harness message identity.
	UID string
	// Consumer is the receiving consumer; Endpoint its consumer group.
	Consumer string
	Endpoint string
	// Dest is the destination the message was delivered from.
	Dest string
	// Time is the start of delivery.
	Time time.Time
	// Priority and Mode echo the message headers.
	Priority jms.Priority
	Mode     jms.DeliveryMode
	// Redelivered marks provider-flagged redeliveries.
	Redelivered bool
	// BodyBytes and Checksum describe the payload as received.
	BodyBytes int
	Checksum  uint32
	// TxID is the enclosing transaction, if any.
	TxID string
}

// Endpoint aggregates what the trace reveals about one consumer group
// (queue or subscription).
type Endpoint struct {
	// ID is the endpoint identifier.
	ID string
	// Dest is the destination consumers of this group consume from.
	Dest string
	// IsQueue distinguishes queue groups from subscriptions.
	IsQueue bool
	// Deliveries are the group's deliveries in trace order.
	Deliveries []Delivery
	// LastClose is the time of the last consumer-close on the group
	// (Definition 4); zero if never closed.
	LastClose time.Time
	// EverOpened reports whether any consumer opened the endpoint.
	EverOpened bool
	// Selector is the consumer group's message selector, if any. A
	// message the selector rejects is not required to be delivered to
	// the group. Selectors over message properties cannot be evaluated
	// black-box from the trace (events carry headers, not payloads), so
	// selector evaluation during required-set construction is
	// conservative: a send whose selector verdict is unknown is
	// excused, never demanded.
	Selector string
}

// World is the extracted view of a trace that the property checkers
// consume: Definitions 1–2 applied, indexed every way the checkers
// need.
type World struct {
	// SendsByProducer maps producer -> destination -> sends in sequence
	// order. Only messages that are "sent" per Definition 1 appear.
	SendsByProducer map[string]map[string][]Send
	// SendByUID indexes every sent message.
	SendByUID map[string]Send
	// AttemptedByUID indexes every send attempt, including uncommitted
	// and failed ones (needed to distinguish "never sent" from "sent but
	// lost" in integrity checking).
	AttemptedByUID map[string]Send
	// Endpoints maps endpoint ID to its aggregate.
	Endpoints map[string]*Endpoint
	// DeliveriesByConsumer maps consumer -> deliveries in trace order.
	DeliveriesByConsumer map[string][]Delivery
	// HasCrash reports whether the trace contains a provider crash,
	// which exempts non-persistent messages from delivery obligations.
	HasCrash bool
}

// Extract applies Definitions 1 and 2 to a merged trace: a
// transactional send/receive counts only if its transaction committed; a
// non-transactional send counts if the call returned without error.
func Extract(tr *trace.Trace) (*World, error) {
	committed := tr.CommittedTx()
	w := &World{
		SendsByProducer:      map[string]map[string][]Send{},
		SendByUID:            map[string]Send{},
		AttemptedByUID:       map[string]Send{},
		Endpoints:            map[string]*Endpoint{},
		DeliveriesByConsumer: map[string][]Delivery{},
		HasCrash:             tr.HasCrash(),
	}

	sendStarts := map[string]time.Time{}
	for i := range tr.Events {
		ev := &tr.Events[i]
		switch ev.Type {
		case trace.EventSendStart:
			sendStarts[ev.MsgUID] = ev.Time

		case trace.EventSendEnd:
			start, ok := sendStarts[ev.MsgUID]
			if !ok {
				return nil, fmt.Errorf("model: send-end for %s without send-start", ev.MsgUID)
			}
			s := Send{
				UID:       ev.MsgUID,
				Seq:       ev.MsgSeq,
				Producer:  ev.Producer,
				Dest:      ev.Dest,
				Priority:  ev.Priority,
				Mode:      ev.Mode,
				TTL:       ev.TTL,
				Start:     start,
				End:       ev.Time,
				BodyBytes: ev.BodyBytes,
				Checksum:  ev.Checksum,
				TxID:      ev.TxID,
			}
			w.AttemptedByUID[s.UID] = s
			if ev.Err != "" {
				continue // the send threw: not sent
			}
			if ev.TxID != "" && !committed[ev.TxID] {
				continue // transaction never committed: not sent
			}
			if w.SendsByProducer[s.Producer] == nil {
				w.SendsByProducer[s.Producer] = map[string][]Send{}
			}
			w.SendsByProducer[s.Producer][s.Dest] = append(w.SendsByProducer[s.Producer][s.Dest], s)
			w.SendByUID[s.UID] = s

		case trace.EventDeliver:
			if ev.TxID != "" && !committed[ev.TxID] {
				continue // rolled back: not received (Definition 2)
			}
			d := Delivery{
				UID:         ev.MsgUID,
				Consumer:    ev.Consumer,
				Endpoint:    ev.Endpoint,
				Dest:        ev.Dest,
				Time:        ev.Time,
				Priority:    ev.Priority,
				Mode:        ev.Mode,
				Redelivered: ev.Redelivered,
				BodyBytes:   ev.BodyBytes,
				Checksum:    ev.Checksum,
				TxID:        ev.TxID,
			}
			ep := w.endpoint(ev.Endpoint)
			if ep.Dest == "" {
				ep.Dest = ev.Dest
			}
			ep.Deliveries = append(ep.Deliveries, d)
			w.DeliveriesByConsumer[d.Consumer] = append(w.DeliveriesByConsumer[d.Consumer], d)

		case trace.EventConsumerOpen, trace.EventSubscribe:
			ep := w.endpoint(ev.Endpoint)
			ep.EverOpened = ep.EverOpened || ev.Type == trace.EventConsumerOpen
			if ep.Dest == "" {
				ep.Dest = ev.Dest
			}
			if ev.Selector != "" {
				ep.Selector = ev.Selector
			}

		case trace.EventConsumerClose:
			ep := w.endpoint(ev.Endpoint)
			if ev.Time.After(ep.LastClose) {
				ep.LastClose = ev.Time
			}
		}
	}

	// Sort each producer's per-destination sends by sequence number so
	// "next message" (Definition 3) is positional.
	for _, dests := range w.SendsByProducer {
		for _, sends := range dests {
			sort.Slice(sends, func(i, j int) bool { return sends[i].Seq < sends[j].Seq })
		}
	}
	return w, nil
}

func (w *World) endpoint(id string) *Endpoint {
	ep, ok := w.Endpoints[id]
	if !ok {
		ep = &Endpoint{ID: id, IsQueue: len(id) > 6 && id[:6] == "queue:"}
		w.Endpoints[id] = ep
	}
	return ep
}

// ReceivedUIDs returns the set of message UIDs received by the endpoint's
// consumer group, at any time.
func (ep *Endpoint) ReceivedUIDs() map[string]bool {
	out := make(map[string]bool, len(ep.Deliveries))
	for _, d := range ep.Deliveries {
		out[d.UID] = true
	}
	return out
}

// Producers returns the producers that sent at least one message to the
// given destination, sorted for determinism.
func (w *World) Producers(dest string) []string {
	var out []string
	for producer, dests := range w.SendsByProducer {
		if len(dests[dest]) > 0 {
			out = append(out, producer)
		}
	}
	sort.Strings(out)
	return out
}

// EndpointIDs returns the endpoint identifiers, sorted for determinism.
func (w *World) EndpointIDs() []string {
	out := make([]string, 0, len(w.Endpoints))
	for id := range w.Endpoints {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}
