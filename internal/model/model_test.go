package model

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"testing"
	"testing/quick"
	"time"

	"jmsharness/internal/jms"
	"jmsharness/internal/trace"
)

// tb builds synthetic traces for checker tests. Times are milliseconds
// from a fixed epoch.
type tb struct {
	events []trace.Event
	seq    int64
	epoch  time.Time
}

func newTB() *tb {
	return &tb{epoch: time.Unix(1000, 0)}
}

func (b *tb) at(ms int) time.Time { return b.epoch.Add(time.Duration(ms) * time.Millisecond) }

func (b *tb) add(ev trace.Event) {
	b.seq++
	ev.Node = "test"
	ev.Seq = b.seq
	b.events = append(b.events, ev)
}

type sendOpt func(*trace.Event)

func withTTL(ttl time.Duration) sendOpt {
	return func(e *trace.Event) { e.TTL = ttl }
}

func withPriority(p jms.Priority) sendOpt {
	return func(e *trace.Event) { e.Priority = p }
}

func withMode(m jms.DeliveryMode) sendOpt {
	return func(e *trace.Event) { e.Mode = m }
}

func withTx(tx string) sendOpt {
	return func(e *trace.Event) { e.TxID = tx }
}

func withErr(msg string) sendOpt {
	return func(e *trace.Event) { e.Err = msg }
}

func withChecksum(c uint32) sendOpt {
	return func(e *trace.Event) { e.Checksum = c }
}

func withRedelivered() sendOpt {
	return func(e *trace.Event) { e.Redelivered = true }
}

// send logs a send-start/send-end pair for producer seq n at time ms.
func (b *tb) send(producer, dest string, n int, ms int, opts ...sendOpt) string {
	uid := trace.MessageUID(producer, int64(n))
	start := trace.Event{
		Type: trace.EventSendStart, Time: b.at(ms), Producer: producer,
		Dest: dest, MsgUID: uid, MsgSeq: int64(n),
		Priority: jms.PriorityDefault, Mode: jms.Persistent, BodyBytes: 100, Checksum: 0xAB,
	}
	end := start
	end.Type = trace.EventSendEnd
	end.Time = b.at(ms + 1)
	for _, o := range opts {
		o(&start)
		o(&end)
	}
	// Errors only apply to the send-end.
	start.Err = ""
	b.add(start)
	b.add(end)
	return uid
}

// deliver logs a delivery of uid to consumer on endpoint at time ms.
func (b *tb) deliver(consumer, endpoint, dest, uid string, ms int, opts ...sendOpt) {
	ev := trace.Event{
		Type: trace.EventDeliver, Time: b.at(ms), Consumer: consumer,
		Endpoint: endpoint, Dest: dest, MsgUID: uid,
		Priority: jms.PriorityDefault, Mode: jms.Persistent, BodyBytes: 100, Checksum: 0xAB,
	}
	for _, o := range opts {
		o(&ev)
	}
	b.add(ev)
}

func (b *tb) open(consumer, endpoint, dest string, ms int) {
	b.add(trace.Event{Type: trace.EventConsumerOpen, Time: b.at(ms),
		Consumer: consumer, Endpoint: endpoint, Dest: dest})
}

func (b *tb) close(consumer, endpoint string, ms int) {
	b.add(trace.Event{Type: trace.EventConsumerClose, Time: b.at(ms),
		Consumer: consumer, Endpoint: endpoint})
}

func (b *tb) commit(tx string, ms int) {
	b.add(trace.Event{Type: trace.EventCommit, Time: b.at(ms), TxID: tx})
}

func (b *tb) abort(tx string, ms int) {
	b.add(trace.Event{Type: trace.EventAbort, Time: b.at(ms), TxID: tx})
}

func (b *tb) crash(ms int) {
	b.add(trace.Event{Type: trace.EventCrash, Time: b.at(ms)})
	b.add(trace.Event{Type: trace.EventRecovered, Time: b.at(ms + 1)})
}

func (b *tb) trace() *trace.Trace {
	// A real node logs in time order; the builder allows out-of-order
	// construction for readability, so re-sort and renumber before
	// merging.
	events := make([]trace.Event, len(b.events))
	copy(events, b.events)
	sort.SliceStable(events, func(i, j int) bool { return events[i].Time.Before(events[j].Time) })
	for i := range events {
		events[i].Seq = int64(i + 1)
	}
	return trace.Merge([][]trace.Event{events}, nil)
}

func (b *tb) world(t *testing.T) *World {
	t.Helper()
	w, err := Extract(b.trace())
	if err != nil {
		t.Fatal(err)
	}
	return w
}

const (
	q1  = "queue:q1"
	qd1 = "queue:q1" // endpoint and dest coincide for queues
)

// goodQueueTrace is a clean point-to-point run: p sends 1..5, c receives
// all in order.
func goodQueueTrace() *tb {
	b := newTB()
	b.open("c1", q1, qd1, 0)
	for i := 1; i <= 5; i++ {
		uid := b.send("p1", qd1, i, 10*i)
		b.deliver("c1", q1, qd1, uid, 10*i+5)
	}
	b.close("c1", q1, 100)
	return b
}

func TestExtractDefinitionOne(t *testing.T) {
	b := newTB()
	b.send("p1", qd1, 1, 10)                  // plain send: sent
	b.send("p1", qd1, 2, 20, withErr("boom")) // failed: not sent
	b.send("p1", qd1, 3, 30, withTx("tx1"))   // committed: sent
	b.send("p1", qd1, 4, 40, withTx("tx2"))   // aborted: not sent
	b.send("p1", qd1, 5, 50, withTx("tx3"))   // no outcome: not sent
	b.commit("tx1", 60)
	b.abort("tx2", 61)
	w := b.world(t)
	sends := w.SendsByProducer["p1"][qd1]
	if len(sends) != 2 {
		t.Fatalf("sent %d messages, want 2 (plain + committed)", len(sends))
	}
	if sends[0].Seq != 1 || sends[1].Seq != 3 {
		t.Errorf("sent seqs %d,%d", sends[0].Seq, sends[1].Seq)
	}
	if len(w.AttemptedByUID) != 5 {
		t.Errorf("attempted %d, want 5", len(w.AttemptedByUID))
	}
}

func TestExtractDefinitionTwo(t *testing.T) {
	b := newTB()
	uid1 := b.send("p1", qd1, 1, 10)
	uid2 := b.send("p1", qd1, 2, 20)
	b.open("c1", q1, qd1, 0)
	b.deliver("c1", q1, qd1, uid1, 30, withTx("rx1"))
	b.deliver("c1", q1, qd1, uid2, 40, withTx("rx2"))
	b.commit("rx1", 50)
	b.abort("rx2", 51)
	w := b.world(t)
	got := w.DeliveriesByConsumer["c1"]
	if len(got) != 1 || got[0].UID != uid1 {
		t.Errorf("received %v, want only %s (committed)", got, uid1)
	}
}

func TestCleanTracePassesAllProperties(t *testing.T) {
	report, err := Check(goodQueueTrace().trace(), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if !report.OK() {
		t.Errorf("clean trace failed:\n%s", report)
	}
	if len(report.Results) != 7 {
		t.Errorf("expected 7 property results, got %d", len(report.Results))
	}
}

func TestTrivialProviderPassesSafety(t *testing.T) {
	// The paper: "A trivial JMS implementation — one that never delivers
	// any messages — will satisfy all the safety properties".
	b := newTB()
	b.open("c1", q1, qd1, 0)
	for i := 1; i <= 10; i++ {
		b.send("p1", qd1, i, 10*i)
	}
	b.close("c1", q1, 200)
	report, err := Check(b.trace(), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if !report.OK() {
		t.Errorf("trivial provider must pass safety:\n%s", report)
	}
}

func TestIntegrityCatchesPhantomMessage(t *testing.T) {
	b := goodQueueTrace()
	b.deliver("c1", q1, qd1, "ghost/99", 99)
	w := b.world(t)
	res := CheckDeliveryIntegrity(w)
	if len(res.Violations) != 1 {
		t.Fatalf("violations = %v", res.Violations)
	}
	if !strings.Contains(res.Violations[0].Detail, "never sent") {
		t.Errorf("detail = %q", res.Violations[0].Detail)
	}
}

func TestIntegrityCatchesUncommittedLeak(t *testing.T) {
	b := newTB()
	b.open("c1", q1, qd1, 0)
	uid := b.send("p1", qd1, 1, 10, withTx("tx1"))
	b.abort("tx1", 20)
	b.deliver("c1", q1, qd1, uid, 30)
	res := CheckDeliveryIntegrity(b.world(t))
	if len(res.Violations) != 1 || !strings.Contains(res.Violations[0].Detail, "uncommitted") {
		t.Errorf("violations = %v", res.Violations)
	}
}

func TestIntegrityCatchesCorruption(t *testing.T) {
	b := newTB()
	b.open("c1", q1, qd1, 0)
	uid := b.send("p1", qd1, 1, 10)
	b.deliver("c1", q1, qd1, uid, 20, withChecksum(0xDEAD))
	res := CheckDeliveryIntegrity(b.world(t))
	if len(res.Violations) != 1 || !strings.Contains(res.Violations[0].Detail, "corrupted") {
		t.Errorf("violations = %v", res.Violations)
	}
}

func TestIntegrityCatchesMisrouting(t *testing.T) {
	b := newTB()
	b.open("c1", "queue:other", "queue:other", 0)
	uid := b.send("p1", qd1, 1, 10)
	b.deliver("c1", "queue:other", "queue:other", uid, 20)
	res := CheckDeliveryIntegrity(b.world(t))
	if len(res.Violations) != 1 || !strings.Contains(res.Violations[0].Detail, "misrouted") {
		t.Errorf("violations = %v", res.Violations)
	}
}

func TestDuplicateDetection(t *testing.T) {
	b := goodQueueTrace()
	b.deliver("c1", q1, qd1, "p1/3", 99)
	w := b.world(t)
	res := CheckNoDuplicates(w, false)
	if len(res.Violations) != 1 {
		t.Fatalf("violations = %v", res.Violations)
	}
	if skip := CheckNoDuplicates(w, true); skip.Skipped == "" || len(skip.Violations) != 0 {
		t.Error("allowDuplicates should skip the check")
	}
}

func TestDuplicateAllowsRedelivered(t *testing.T) {
	b := goodQueueTrace()
	b.deliver("c1", q1, qd1, "p1/3", 99, withRedelivered())
	res := CheckNoDuplicates(b.world(t), false)
	if len(res.Violations) != 0 {
		t.Errorf("redelivered duplicate flagged: %v", res.Violations)
	}
}

func TestRequiredCatchesGap(t *testing.T) {
	b := newTB()
	b.open("c1", q1, qd1, 0)
	uids := make([]string, 6)
	for i := 1; i <= 5; i++ {
		uids[i] = b.send("p1", qd1, i, 10*i)
	}
	// Deliver 1,2,4,5 — 3 is silently dropped mid-stream.
	for _, i := range []int{1, 2, 4, 5} {
		b.deliver("c1", q1, qd1, uids[i], 60+i)
	}
	b.close("c1", q1, 100)
	res := CheckRequiredMessages(b.world(t), RequiredOptions{})
	if len(res.Violations) != 1 {
		t.Fatalf("violations = %v", res.Violations)
	}
	if res.Violations[0].MsgUID != "p1/3" {
		t.Errorf("flagged %s, want p1/3", res.Violations[0].MsgUID)
	}
}

func TestRequiredQueueFirstMessageIsFirstSent(t *testing.T) {
	// For a queue, the first message is the first *sent* (Definition 6):
	// dropping the head of the stream is a violation even though the
	// consumer never saw it.
	b := newTB()
	b.open("c1", q1, qd1, 0)
	uid1 := b.send("p1", qd1, 1, 10)
	uid2 := b.send("p1", qd1, 2, 20)
	_ = uid1
	b.deliver("c1", q1, qd1, uid2, 30)
	b.close("c1", q1, 100)
	res := CheckRequiredMessages(b.world(t), RequiredOptions{})
	if len(res.Violations) != 1 || res.Violations[0].MsgUID != "p1/1" {
		t.Errorf("violations = %v, want p1/1 missing", res.Violations)
	}
}

func TestRequiredSubscriptionFirstMessageIsFirstReceived(t *testing.T) {
	// For a subscription, messages published before the first received
	// one are excused (subscription latency).
	const sub = "sub:anon:c1"
	const topic = "topic:t"
	b := newTB()
	b.open("c1", sub, topic, 0)
	uid1 := b.send("p1", topic, 1, 10)
	uid2 := b.send("p1", topic, 2, 20)
	uid3 := b.send("p1", topic, 3, 30)
	_ = uid1 // missed: subscription had not propagated
	b.deliver("c1", sub, topic, uid2, 40)
	b.deliver("c1", sub, topic, uid3, 50)
	b.close("c1", sub, 100)
	res := CheckRequiredMessages(b.world(t), RequiredOptions{})
	if len(res.Violations) != 0 {
		t.Errorf("subscription-latency miss flagged: %v", res.Violations)
	}
}

func TestRequiredTailAfterLastReceivedExcused(t *testing.T) {
	// Messages after the last received one are excused (delivery
	// latency at close).
	b := newTB()
	b.open("c1", q1, qd1, 0)
	uid1 := b.send("p1", qd1, 1, 10)
	b.deliver("c1", q1, qd1, uid1, 20)
	b.close("c1", q1, 30)
	b.send("p1", qd1, 2, 40) // sent around/after close, never delivered
	res := CheckRequiredMessages(b.world(t), RequiredOptions{})
	if len(res.Violations) != 0 {
		t.Errorf("post-close tail flagged: %v", res.Violations)
	}
}

func TestRequiredDeliveryAfterLastCloseDoesNotExtendBracket(t *testing.T) {
	// A delivery after the group's last close must not extend the
	// required interval (Definition 5 conditions on "received before the
	// last close").
	b := newTB()
	b.open("c1", q1, qd1, 0)
	uid1 := b.send("p1", qd1, 1, 10)
	uid2 := b.send("p1", qd1, 2, 20)
	uid3 := b.send("p1", qd1, 3, 30)
	_ = uid2
	b.deliver("c1", q1, qd1, uid1, 15)
	b.close("c1", q1, 40)
	b.deliver("c1", q1, qd1, uid3, 50) // straggler after last close
	w := b.world(t)
	rs := BuildRequiredSet(w, "p1", w.Endpoints[q1], RequiredOptions{})
	if rs.LastSeq != 1 {
		t.Errorf("LastSeq = %d, want 1 (straggler must not extend bracket)", rs.LastSeq)
	}
	res := CheckRequiredMessages(w, RequiredOptions{})
	if len(res.Violations) != 0 {
		t.Errorf("violations = %v", res.Violations)
	}
}

func TestRequiredExemptsExpiring(t *testing.T) {
	b := newTB()
	b.open("c1", q1, qd1, 0)
	uid1 := b.send("p1", qd1, 1, 10)
	b.send("p1", qd1, 2, 20, withTTL(time.Millisecond)) // expires, never delivered
	uid3 := b.send("p1", qd1, 3, 30)
	b.deliver("c1", q1, qd1, uid1, 40)
	b.deliver("c1", q1, qd1, uid3, 50)
	b.close("c1", q1, 100)
	strict := CheckRequiredMessages(b.world(t), RequiredOptions{})
	if len(strict.Violations) != 1 {
		t.Errorf("without exemption: %v", strict.Violations)
	}
	relaxed := CheckRequiredMessages(b.world(t), RequiredOptions{ExemptExpiring: true})
	if len(relaxed.Violations) != 0 {
		t.Errorf("with exemption: %v", relaxed.Violations)
	}
}

func TestRequiredCrashExemptsNonPersistent(t *testing.T) {
	b := newTB()
	b.open("c1", q1, qd1, 0)
	uid1 := b.send("p1", qd1, 1, 10, withMode(jms.Persistent))
	b.send("p1", qd1, 2, 20, withMode(jms.NonPersistent)) // lost in crash
	uid3 := b.send("p1", qd1, 3, 30, withMode(jms.Persistent))
	b.crash(35)
	b.deliver("c1", q1, qd1, uid1, 40)
	b.deliver("c1", q1, qd1, uid3, 50)
	b.close("c1", q1, 100)
	res := CheckRequiredMessages(b.world(t), RequiredOptions{})
	if len(res.Violations) != 0 {
		t.Errorf("crash run: non-persistent loss flagged: %v", res.Violations)
	}
	// But a lost *persistent* message is still a violation.
	b2 := newTB()
	b2.open("c1", q1, qd1, 0)
	uidA := b2.send("p1", qd1, 1, 10, withMode(jms.Persistent))
	b2.send("p1", qd1, 2, 20, withMode(jms.Persistent)) // lost: violation
	uidC := b2.send("p1", qd1, 3, 30, withMode(jms.Persistent))
	b2.crash(35)
	b2.deliver("c1", q1, qd1, uidA, 40)
	b2.deliver("c1", q1, qd1, uidC, 50)
	b2.close("c1", q1, 100)
	res2 := CheckRequiredMessages(b2.world(t), RequiredOptions{})
	if len(res2.Violations) != 1 {
		t.Errorf("persistent loss in crash run: %v", res2.Violations)
	}
}

func TestOrderingDetectsSwap(t *testing.T) {
	b := newTB()
	b.open("c1", q1, qd1, 0)
	uid1 := b.send("p1", qd1, 1, 10)
	uid2 := b.send("p1", qd1, 2, 20)
	b.deliver("c1", q1, qd1, uid2, 30)
	b.deliver("c1", q1, qd1, uid1, 40)
	res := CheckMessageOrdering(b.world(t))
	if len(res.Violations) != 1 {
		t.Fatalf("violations = %v", res.Violations)
	}
}

func TestOrderingPerPriorityStreamsIndependent(t *testing.T) {
	// Different priorities are different streams: a high-priority
	// message overtaking a low-priority one is legal.
	b := newTB()
	b.open("c1", q1, qd1, 0)
	uid1 := b.send("p1", qd1, 1, 10, withPriority(1))
	uid2 := b.send("p1", qd1, 2, 20, withPriority(9))
	b.deliver("c1", q1, qd1, uid2, 30, withPriority(9))
	b.deliver("c1", q1, qd1, uid1, 40, withPriority(1))
	res := CheckMessageOrdering(b.world(t))
	if len(res.Violations) != 0 {
		t.Errorf("cross-priority overtake flagged: %v", res.Violations)
	}
}

func TestOrderingCrossModeRule(t *testing.T) {
	// Non-persistent may overtake persistent...
	b := newTB()
	b.open("c1", q1, qd1, 0)
	uidP := b.send("p1", qd1, 1, 10, withMode(jms.Persistent))
	uidN := b.send("p1", qd1, 2, 20, withMode(jms.NonPersistent))
	b.deliver("c1", q1, qd1, uidN, 30, withMode(jms.NonPersistent))
	b.deliver("c1", q1, qd1, uidP, 40, withMode(jms.Persistent))
	res := CheckMessageOrdering(b.world(t))
	if len(res.Violations) != 0 {
		t.Errorf("legal non-persistent skip flagged: %v", res.Violations)
	}
	// ...but persistent may not overtake non-persistent.
	b2 := newTB()
	b2.open("c1", q1, qd1, 0)
	uidN2 := b2.send("p1", qd1, 1, 10, withMode(jms.NonPersistent))
	uidP2 := b2.send("p1", qd1, 2, 20, withMode(jms.Persistent))
	b2.deliver("c1", q1, qd1, uidP2, 30, withMode(jms.Persistent))
	b2.deliver("c1", q1, qd1, uidN2, 40, withMode(jms.NonPersistent))
	res2 := CheckMessageOrdering(b2.world(t))
	if len(res2.Violations) != 1 {
		t.Errorf("illegal persistent skip not flagged: %v", res2.Violations)
	}
}

func TestOrderingExemptsRedelivered(t *testing.T) {
	b := newTB()
	b.open("c1", q1, qd1, 0)
	uid1 := b.send("p1", qd1, 1, 10)
	uid2 := b.send("p1", qd1, 2, 20)
	b.deliver("c1", q1, qd1, uid1, 30)
	b.deliver("c1", q1, qd1, uid2, 40)
	b.deliver("c1", q1, qd1, uid1, 50, withRedelivered())
	res := CheckMessageOrdering(b.world(t))
	if len(res.Violations) != 0 {
		t.Errorf("redelivery flagged as ordering violation: %v", res.Violations)
	}
}

// priorityTrace delivers high-priority messages with the given mean
// delays per priority (ms).
func priorityTrace(delayP1, delayP9 int) *tb {
	b := newTB()
	b.open("c1", q1, qd1, 0)
	seq := 0
	for i := 0; i < 10; i++ {
		seq++
		uid := b.send("p1", qd1, seq, 100*i, withPriority(1))
		b.deliver("c1", q1, qd1, uid, 100*i+delayP1, withPriority(1))
		seq++
		uid = b.send("p1", qd1, seq, 100*i+50, withPriority(9))
		b.deliver("c1", q1, qd1, uid, 100*i+50+delayP9, withPriority(9))
	}
	return b
}

func TestPriorityPassesWhenHigherIsFaster(t *testing.T) {
	res := CheckMessagePriority(priorityTrace(40, 10).world(t), DefaultPriorityOptions())
	if len(res.Violations) != 0 {
		t.Errorf("violations = %v\n%s", res.Violations, res.Detail)
	}
	if res.Detail == "" {
		t.Error("detail should report per-priority means")
	}
}

func TestPriorityFlagsInversion(t *testing.T) {
	res := CheckMessagePriority(priorityTrace(10, 40).world(t), DefaultPriorityOptions())
	if len(res.Violations) != 1 {
		t.Errorf("violations = %v", res.Violations)
	}
}

func TestPrioritySkipsWithOneLevel(t *testing.T) {
	res := CheckMessagePriority(goodQueueTrace().world(t), DefaultPriorityOptions())
	if res.Skipped == "" {
		t.Error("single-priority trace should skip the check")
	}
}

func TestCandidateInversions(t *testing.T) {
	// Both messages pending concurrently; low priority delivered first.
	b := newTB()
	b.open("c1", q1, qd1, 0)
	uidLo := b.send("p1", qd1, 1, 10, withPriority(1))
	uidHi := b.send("p1", qd1, 2, 11, withPriority(9))
	b.deliver("c1", q1, qd1, uidLo, 50, withPriority(1))
	b.deliver("c1", q1, qd1, uidHi, 60, withPriority(9))
	inv, cand := CandidateInversions(b.world(t))
	if cand != 1 || inv != 1 {
		t.Errorf("inv=%d cand=%d, want 1/1", inv, cand)
	}
	// Not concurrent: high sent after low was already delivered.
	b2 := newTB()
	b2.open("c1", q1, qd1, 0)
	uidLo2 := b2.send("p1", qd1, 1, 10, withPriority(1))
	b2.deliver("c1", q1, qd1, uidLo2, 20, withPriority(1))
	uidHi2 := b2.send("p1", qd1, 2, 30, withPriority(9))
	b2.deliver("c1", q1, qd1, uidHi2, 40, withPriority(9))
	_, cand2 := CandidateInversions(b2.world(t))
	if cand2 != 0 {
		t.Errorf("non-concurrent pair counted as candidate: %d", cand2)
	}
}

func TestExpiryFlagsIgnoredTTL(t *testing.T) {
	// Provider delivers everything, including messages with 1ms TTL that
	// (given ~20ms latency) should have expired.
	b := newTB()
	b.open("c1", q1, qd1, 0)
	for i := 1; i <= 20; i++ {
		var opts []sendOpt
		if i%2 == 0 {
			opts = append(opts, withTTL(time.Millisecond))
		}
		uid := b.send("p1", qd1, i, 10*i, opts...)
		b.deliver("c1", q1, qd1, uid, 10*i+20, opts...)
	}
	b.close("c1", q1, 500)
	res := CheckExpiredMessages(b.world(t), DefaultExpiryOptions())
	if len(res.Violations) != 1 || !strings.Contains(res.Violations[0].Detail, "ignored") {
		t.Errorf("violations = %v", res.Violations)
	}
}

func TestExpiryFlagsOverEagerExpiry(t *testing.T) {
	// Provider drops live (TTL=0) messages mid-stream, blaming expiry.
	b := newTB()
	b.open("c1", q1, qd1, 0)
	var uids []string
	for i := 1; i <= 20; i++ {
		var opts []sendOpt
		if i == 5 {
			opts = append(opts, withTTL(time.Hour)) // plenty of time: expected live
		}
		uids = append(uids, b.send("p1", qd1, i, 10*i, opts...))
	}
	for i, uid := range uids {
		if i+1 == 5 {
			continue // dropped despite generous TTL
		}
		b.deliver("c1", q1, qd1, uid, 300+10*i)
	}
	b.close("c1", q1, 600)
	res := CheckExpiredMessages(b.world(t), ExpiryOptions{MaxExpiredDeliveredFrac: 0.05, MinLiveDeliveredFrac: 0.99})
	if len(res.Violations) != 1 || !strings.Contains(res.Violations[0].Detail, "over-eager") {
		t.Errorf("violations = %v", res.Violations)
	}
}

func TestExpirySkipsWithoutTTL(t *testing.T) {
	res := CheckExpiredMessages(goodQueueTrace().world(t), DefaultExpiryOptions())
	if res.Skipped == "" {
		t.Error("no-TTL trace should skip expiry check")
	}
}

func TestExpiryCorrectProviderPasses(t *testing.T) {
	// TTL=1ms messages dropped, TTL=0 delivered: the paper's stock
	// expiry configuration on a correct provider.
	b := newTB()
	b.open("c1", q1, qd1, 0)
	for i := 1; i <= 20; i++ {
		var opts []sendOpt
		if i%2 == 0 {
			opts = append(opts, withTTL(time.Millisecond))
		}
		uid := b.send("p1", qd1, i, 10*i, opts...)
		if i%2 == 1 {
			b.deliver("c1", q1, qd1, uid, 10*i+20)
		}
	}
	b.close("c1", q1, 500)
	res := CheckExpiredMessages(b.world(t), DefaultExpiryOptions())
	if len(res.Violations) != 0 {
		t.Errorf("violations = %v (%s)", res.Violations, res.Detail)
	}
}

func TestExpectationModels(t *testing.T) {
	simple := SimpleExpectation{MeanLatency: 20 * time.Millisecond}
	if simple.ProbDelivered(0) != 1 || simple.ProbDelivered(time.Hour) != 1 {
		t.Error("simple model: long/zero TTL should be delivered")
	}
	if simple.ProbDelivered(time.Millisecond) != 0 {
		t.Error("simple model: sub-latency TTL should expire")
	}

	normal := NormalExpectation{MeanSeconds: 0.020, StdDevSeconds: 0.005}
	if p := normal.ProbDelivered(20 * time.Millisecond); p < 0.45 || p > 0.55 {
		t.Errorf("normal model at mean: %v", p)
	}
	if normal.ProbDelivered(0) != 1 {
		t.Error("normal model: zero TTL never expires")
	}

	hist := HistogramExpectation{}
	if hist.ProbDelivered(time.Millisecond) != 1 {
		t.Error("empty histogram should default to delivered")
	}
}

func TestFIFOAutomatonCrossCheckAgreesWithOrdering(t *testing.T) {
	good := goodQueueTrace().world(t)
	if res := CheckFIFOAutomata(good); len(res.Violations) != 0 {
		t.Errorf("clean trace rejected by automaton: %v", res.Violations)
	}
	bad := newTB()
	bad.open("c1", q1, qd1, 0)
	uid1 := bad.send("p1", qd1, 1, 10)
	uid2 := bad.send("p1", qd1, 2, 20)
	bad.deliver("c1", q1, qd1, uid2, 30)
	bad.deliver("c1", q1, qd1, uid1, 40)
	w := bad.world(t)
	auto := CheckFIFOAutomata(w)
	offline := CheckMessageOrdering(w)
	if (len(auto.Violations) == 0) != (len(offline.Violations) == 0) {
		t.Errorf("automaton (%d violations) disagrees with offline checker (%d)",
			len(auto.Violations), len(offline.Violations))
	}
	if len(auto.Violations) == 0 {
		t.Error("automaton missed the reordering")
	}
}

func TestReportRendering(t *testing.T) {
	b := goodQueueTrace()
	b.deliver("c1", q1, qd1, "ghost/1", 99)
	report, err := Check(b.trace(), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if report.OK() {
		t.Fatal("report should fail")
	}
	out := report.String()
	if !strings.Contains(out, "FAIL") || !strings.Contains(out, "delivery-integrity") {
		t.Errorf("report rendering:\n%s", out)
	}
	if len(report.Violations()) == 0 {
		t.Error("Violations() empty")
	}
	if _, ok := report.Result(PropDeliveryIntegrity); !ok {
		t.Error("Result lookup failed")
	}
	if _, ok := report.Result(Property("nonexistent")); ok {
		t.Error("Result lookup for unknown property should fail")
	}
}

func TestCheckRejectsInvalidTrace(t *testing.T) {
	tr := &trace.Trace{Events: []trace.Event{{Seq: 1, Type: trace.EventAck}}}
	if _, err := Check(tr, DefaultConfig()); err == nil {
		t.Error("invalid trace accepted")
	}
}

func TestViolationString(t *testing.T) {
	v := Violation{Property: PropRequiredMessages, Endpoint: "queue:q",
		Producer: "p", Consumer: "c", MsgUID: "p/1", Detail: "missing"}
	s := v.String()
	for _, part := range []string{"required-messages", "queue:q", "p/1", "missing"} {
		if !strings.Contains(s, part) {
			t.Errorf("violation string %q missing %q", s, part)
		}
	}
}

func TestWorldHelpers(t *testing.T) {
	w := goodQueueTrace().world(t)
	if got := w.Producers(qd1); len(got) != 1 || got[0] != "p1" {
		t.Errorf("Producers = %v", got)
	}
	if got := w.Producers("queue:none"); len(got) != 0 {
		t.Errorf("Producers of unknown dest = %v", got)
	}
	if got := w.EndpointIDs(); len(got) != 1 || got[0] != q1 {
		t.Errorf("EndpointIDs = %v", got)
	}
	ep := w.Endpoints[q1]
	if !ep.EverOpened || ep.LastClose.IsZero() || !ep.IsQueue {
		t.Errorf("endpoint state = %+v", ep)
	}
	if len(ep.ReceivedUIDs()) != 5 {
		t.Errorf("ReceivedUIDs = %v", ep.ReceivedUIDs())
	}
}

func TestMultiProducerMultiEndpoint(t *testing.T) {
	// Two producers to one queue, one producer to a subscription; a gap
	// in exactly one (producer, endpoint) pair is attributed correctly.
	const sub = "sub:cid:watch"
	const topic = "topic:t"
	b := newTB()
	b.open("c1", q1, qd1, 0)
	b.open("c2", sub, topic, 0)
	for i := 1; i <= 3; i++ {
		uid := b.send("p1", qd1, i, 10*i)
		b.deliver("c1", q1, qd1, uid, 10*i+2)
	}
	var p2uids []string
	for i := 1; i <= 3; i++ {
		p2uids = append(p2uids, b.send("p2", qd1, i, 10*i+5))
	}
	b.deliver("c1", q1, qd1, p2uids[0], 40)
	// p2/2 dropped!
	b.deliver("c1", q1, qd1, p2uids[2], 50)
	for i := 1; i <= 3; i++ {
		uid := b.send("p3", topic, i, 10*i)
		b.deliver("c2", sub, topic, uid, 10*i+3)
	}
	b.close("c1", q1, 100)
	b.close("c2", sub, 100)
	res := CheckRequiredMessages(b.world(t), RequiredOptions{})
	if len(res.Violations) != 1 {
		t.Fatalf("violations = %v", res.Violations)
	}
	v := res.Violations[0]
	if v.Producer != "p2" || v.MsgUID != "p2/2" || v.Endpoint != q1 {
		t.Errorf("violation attribution = %+v", v)
	}
}

func TestExtractErrorOnDanglingSendEnd(t *testing.T) {
	tr := &trace.Trace{Events: []trace.Event{
		{Node: "n", Seq: 1, Type: trace.EventSendEnd, MsgUID: "p/1", Producer: "p"},
	}}
	if _, err := Extract(tr); err == nil {
		t.Error("dangling send-end accepted")
	}
}

func ExampleReport_String() {
	b := newTB()
	b.open("c1", "queue:demo", "queue:demo", 0)
	uid := b.send("p1", "queue:demo", 1, 10)
	b.deliver("c1", "queue:demo", "queue:demo", uid, 20)
	b.close("c1", "queue:demo", 30)
	report, _ := Check(b.trace(), DefaultConfig())
	fmt.Println(report.OK())
	// Output: true
}

// TestRequiredMessagesMetamorphicProperty is a property test of the
// checker itself: starting from a randomly generated clean
// (violation-free) queue trace, removing any delivery that is not the
// producer's highest-sequence delivered message must produce exactly
// one required-messages violation naming that message; removing the
// highest-sequence one shrinks the bracket and must stay clean.
func TestRequiredMessagesMetamorphicProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 3 + r.Intn(12)
		b := newTB()
		b.open("c1", q1, qd1, 0)
		var uids []string
		for i := 1; i <= n; i++ {
			uid := b.send("p1", qd1, i, 10*i)
			b.deliver("c1", q1, qd1, uid, 10*i+5)
			uids = append(uids, uid)
		}
		b.close("c1", q1, 10*n+100)

		clean := CheckRequiredMessages(b.world(t), RequiredOptions{})
		if len(clean.Violations) != 0 {
			t.Logf("seed %d: clean trace flagged: %v", seed, clean.Violations)
			return false
		}

		// Remove one random delivery.
		victim := r.Intn(n)
		b2 := newTB()
		b2.open("c1", q1, qd1, 0)
		for i := 1; i <= n; i++ {
			uid := b2.send("p1", qd1, i, 10*i)
			if i-1 != victim {
				b2.deliver("c1", q1, qd1, uid, 10*i+5)
			}
		}
		b2.close("c1", q1, 10*n+100)
		res := CheckRequiredMessages(b2.world(t), RequiredOptions{})
		if victim == n-1 {
			// The last message: the bracket shrinks, no violation.
			if len(res.Violations) != 0 {
				t.Logf("seed %d: tail removal flagged: %v", seed, res.Violations)
				return false
			}
			return true
		}
		if len(res.Violations) != 1 || res.Violations[0].MsgUID != uids[victim] {
			t.Logf("seed %d: removing %s gave %v", seed, uids[victim], res.Violations)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// TestOrderingMetamorphicProperty: swapping two adjacent deliveries of
// distinct messages in a clean trace must produce at least one ordering
// violation, caught by both the offline checker and the automaton.
func TestOrderingMetamorphicProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 3 + r.Intn(10)
		swap := r.Intn(n - 1) // swap deliveries swap and swap+1
		b := newTB()
		b.open("c1", q1, qd1, 0)
		var uids []string
		for i := 1; i <= n; i++ {
			uids = append(uids, b.send("p1", qd1, i, 10*i))
		}
		for i := 0; i < n; i++ {
			idx := i
			if i == swap {
				idx = swap + 1
			} else if i == swap+1 {
				idx = swap
			}
			b.deliver("c1", q1, qd1, uids[idx], 10*n+10*i)
		}
		b.close("c1", q1, 30*n+100)
		w := b.world(t)
		offline := CheckMessageOrdering(w)
		automaton := CheckFIFOAutomata(w)
		if len(offline.Violations) == 0 {
			t.Logf("seed %d: offline checker missed swap at %d", seed, swap)
			return false
		}
		if len(automaton.Violations) == 0 {
			t.Logf("seed %d: automaton missed swap at %d", seed, swap)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
