package model

import (
	"fmt"

	"jmsharness/internal/jms"
	"jmsharness/internal/selector"
	"jmsharness/internal/trace"
)

// headerOnlyMessage reconstructs the selectable headers of a sent
// message from its trace record (payload properties are not logged).
func headerOnlyMessage(s Send) *jms.Message {
	return &jms.Message{Priority: s.Priority, Mode: s.Mode}
}

// RequiredSet is the required message set (Property 2) for one
// (producer, endpoint) pair, together with the bracketing first/last
// messages (Definitions 5–6) that define it.
type RequiredSet struct {
	Producer string
	Endpoint string
	// FirstSeq and LastSeq bracket the required interval in producer
	// sequence numbers (inclusive). Empty sets have FirstSeq > LastSeq.
	FirstSeq int64
	LastSeq  int64
	// Required lists the messages that must have been received by some
	// consumer of the group, after exemptions.
	Required []Send
	// Exempt counts messages inside the bracket excused from delivery
	// (expiring messages; non-persistent messages in a crash run).
	Exempt int
}

// Empty reports whether the set imposes no obligations.
func (rs *RequiredSet) Empty() bool { return len(rs.Required) == 0 }

// RequiredOptions tunes required-set construction.
type RequiredOptions struct {
	// ExemptExpiring excludes messages sent with a non-zero
	// time-to-live from the required set: whether they must arrive is
	// Property 5's (probabilistic) concern, not Property 2's.
	ExemptExpiring bool
	// CrashInTrace exempts non-persistent messages: the specification
	// only guarantees persistent messages across failures.
	CrashInTrace bool
}

// BuildRequiredSet applies Definitions 3–6 for one producer and one
// endpoint:
//
//   - Last close (Definition 4) is taken from the endpoint's close
//     events.
//   - The last message (Definition 5) is the producer's highest-sequence
//     message received by the group before the last close (or at any
//     time, if the group was never closed).
//   - The first message (Definition 6) is the producer's first sent
//     message for a queue, and the producer's first message received by
//     the group for a subscription (subscription latency means earlier
//     messages may legitimately have been missed).
//   - The required set (Property 2) is every message the producer sent
//     between the two, in sequence order, minus exemptions.
//
// For a non-durable subscription the bracket is computed per priority
// class rather than globally. The provider legitimately reorders across
// priorities, and a non-durable subscription's undelivered backlog is
// legitimately discarded when the subscriber closes or the provider
// crashes (JMS persistence covers queues and durable subscriptions
// only). A high-priority, high-sequence delivery therefore must not
// conscript lower-priority stragglers into the required set; within one
// priority class delivery is FIFO, so bracketing stays sound. With a
// single priority the lane rule degenerates to the global bracket.
func BuildRequiredSet(w *World, producer string, ep *Endpoint, opts RequiredOptions) RequiredSet {
	rs := RequiredSet{Producer: producer, Endpoint: ep.ID, FirstSeq: 1, LastSeq: 0}
	sends := w.SendsByProducer[producer][ep.Dest]
	if len(sends) == 0 {
		return rs
	}
	// A consumer group with a message selector is only owed the
	// messages its selector admits. Trace events carry headers but not
	// payload properties, so evaluation is conservative: unknown
	// verdicts excuse the message rather than demand it.
	var sel *selector.Selector
	if ep.Selector != "" {
		if parsed, err := selector.Parse(ep.Selector); err == nil {
			sel = parsed
		}
	}

	// Queues and durable subscriptions retain undelivered backlog across
	// consumer closes and crashes, so one global bracket is sound (and
	// stronger); non-durable subscriptions get one bracket per priority.
	lanes := !ep.IsQueue && trace.IsNonDurableEndpoint(ep.ID)
	laneOf := func(p jms.Priority) int {
		if lanes {
			return int(p)
		}
		return -1
	}

	// Definition 5: last message received from this producer before the
	// group's last close, per lane.
	last := map[int]int64{}
	for _, d := range ep.Deliveries {
		if !ep.LastClose.IsZero() && d.Time.After(ep.LastClose) {
			continue
		}
		send, ok := w.SendByUID[d.UID]
		if !ok || send.Producer != producer || send.Dest != ep.Dest {
			continue
		}
		if lane := laneOf(send.Priority); send.Seq > last[lane] {
			last[lane] = send.Seq
		}
	}
	if len(last) == 0 {
		// Nothing from this producer was ever received: black-box
		// analysis cannot bracket an interval, so no obligations (the
		// paper's trivial-provider observation).
		return rs
	}

	// Definition 6: first message, per lane.
	first := map[int]int64{}
	if ep.IsQueue {
		first[laneOf(0)] = sends[0].Seq
	} else {
		for _, d := range ep.Deliveries {
			send, ok := w.SendByUID[d.UID]
			if !ok || send.Producer != producer || send.Dest != ep.Dest {
				continue
			}
			lane := laneOf(send.Priority)
			if f, ok := first[lane]; !ok || send.Seq < f {
				first[lane] = send.Seq
			}
		}
	}
	// Report the envelope of the lane brackets.
	envFirst, envLast := int64(-1), int64(-1)
	for lane, l := range last {
		f, ok := first[lane]
		if !ok || f > l {
			continue
		}
		if envFirst < 0 || f < envFirst {
			envFirst = f
		}
		if l > envLast {
			envLast = l
		}
	}
	if envFirst < 0 {
		return rs
	}
	rs.FirstSeq, rs.LastSeq = envFirst, envLast

	for _, s := range sends {
		lane := laneOf(s.Priority)
		lastSeq, ok := last[lane]
		if !ok {
			continue
		}
		firstSeq, ok := first[lane]
		if !ok || s.Seq < firstSeq || s.Seq > lastSeq {
			continue
		}
		if opts.ExemptExpiring && s.TTL > 0 {
			rs.Exempt++
			continue
		}
		if opts.CrashInTrace && s.Mode == jms.NonPersistent {
			rs.Exempt++
			continue
		}
		if sel != nil && !sel.Matches(headerOnlyMessage(s)) {
			rs.Exempt++
			continue
		}
		rs.Required = append(rs.Required, s)
	}
	return rs
}

// CheckRequiredMessages implements Property 2 across all producers and
// endpoints: "Correctness requires that the union of all messages
// received by consumers be a super set of the required message set."
func CheckRequiredMessages(w *World, opts RequiredOptions) PropertyResult {
	res := PropertyResult{Property: PropRequiredMessages}
	opts.CrashInTrace = opts.CrashInTrace || w.HasCrash
	totalRequired, totalExempt := 0, 0
	for _, id := range w.EndpointIDs() {
		ep := w.Endpoints[id]
		received := ep.ReceivedUIDs()
		for _, producer := range w.Producers(ep.Dest) {
			rs := BuildRequiredSet(w, producer, ep, opts)
			totalRequired += len(rs.Required)
			totalExempt += rs.Exempt
			for _, s := range rs.Required {
				res.Checked++
				if !received[s.UID] {
					res.Violations = append(res.Violations, Violation{
						Property: PropRequiredMessages,
						Endpoint: id,
						Producer: producer,
						MsgUID:   s.UID,
						Detail: fmt.Sprintf("message seq=%d (sent within required interval [%d,%d]) was never received by the group",
							s.Seq, rs.FirstSeq, rs.LastSeq),
					})
				}
			}
		}
	}
	res.Detail = fmt.Sprintf("required=%d exempt=%d", totalRequired, totalExempt)
	return res
}
