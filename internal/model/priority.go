package model

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"jmsharness/internal/jms"
	"jmsharness/internal/stats"
)

// PriorityOptions tunes the Property 4 check.
type PriorityOptions struct {
	// Tolerance is the fraction by which a lower priority's mean delay
	// may undercut a higher priority's before it is a violation, since
	// the specification only requires best effort. 0.10 means the lower
	// priority may be up to 10% faster.
	Tolerance float64
	// AbsoluteSlack is an absolute floor under the relative tolerance:
	// an inversion whose absolute mean-delay difference is at most this
	// much is not a violation. On an unloaded provider every priority
	// is delivered near-instantly and sub-millisecond noise would
	// otherwise flip the comparison; priority only has observable
	// effect when messages actually queue.
	AbsoluteSlack time.Duration
	// MinSamples is the minimum number of delay samples a priority level
	// needs before it participates in the comparison.
	MinSamples int
	// MaxInversionFrac bounds the fraction of candidate pairs (see
	// CandidateInversions) delivered out of priority order. Negative
	// disables the candidate-pair check.
	MaxInversionFrac float64
}

// DefaultPriorityOptions returns the tolerances used by the stock test
// configurations.
func DefaultPriorityOptions() PriorityOptions {
	return PriorityOptions{
		Tolerance:        0.10,
		AbsoluteSlack:    time.Millisecond,
		MinSamples:       5,
		MaxInversionFrac: -1,
	}
}

// priorityDelays collects per-priority delay summaries over all
// deliveries whose send is known. Delay is "the time between the start
// of the message delivery to a consumer and the start of the call to
// send or publish the message" (§3.2).
func priorityDelays(w *World) map[jms.Priority]*stats.Summary {
	out := map[jms.Priority]*stats.Summary{}
	for _, deliveries := range w.DeliveriesByConsumer {
		for _, d := range deliveries {
			send, ok := w.SendByUID[d.UID]
			if !ok || d.Redelivered {
				continue
			}
			s, ok := out[send.Priority]
			if !ok {
				s = &stats.Summary{}
				out[send.Priority] = s
			}
			s.Add(d.Time.Sub(send.Start).Seconds())
		}
	}
	return out
}

// CheckMessagePriority implements Property 4: "The mean message delivery
// time between a producer and consumer for a lower message priority is
// greater or equal to the mean message delivery time for a higher
// message priority", assuming messages of all priorities were produced
// at the same rate with the same delivery mode. The property may be
// relaxed (Tolerance) or effectively dropped, since JMS only requires
// best effort.
func CheckMessagePriority(w *World, opts PriorityOptions) PropertyResult {
	res := PropertyResult{Property: PropMessagePriority}
	delays := priorityDelays(w)

	type level struct {
		pri  jms.Priority
		mean float64
		n    int64
	}
	var levels []level
	for pri, s := range delays {
		if int(s.N()) >= opts.MinSamples {
			levels = append(levels, level{pri: pri, mean: s.Mean(), n: s.N()})
		}
	}
	sort.Slice(levels, func(i, j int) bool { return levels[i].pri < levels[j].pri })
	if len(levels) < 2 {
		res.Skipped = "fewer than two priority levels with enough samples"
		return res
	}
	var detail []string
	for _, l := range levels {
		detail = append(detail, fmt.Sprintf("p%d=%.1fms(n=%d)", l.pri, l.mean*1000, l.n))
	}
	res.Detail = strings.Join(detail, " ")

	for i := 0; i < len(levels)-1; i++ {
		for j := i + 1; j < len(levels); j++ {
			lo, hi := levels[i], levels[j]
			res.Checked++
			if lo.mean < hi.mean*(1-opts.Tolerance) &&
				hi.mean-lo.mean > opts.AbsoluteSlack.Seconds() {
				res.Violations = append(res.Violations, Violation{
					Property: PropMessagePriority,
					Detail: fmt.Sprintf("priority %d mean delay %.2fms is faster than priority %d mean delay %.2fms beyond tolerance %.0f%%",
						lo.pri, lo.mean*1000, hi.pri, hi.mean*1000, opts.Tolerance*100),
				})
			}
		}
	}

	if opts.MaxInversionFrac >= 0 {
		inv, cand := CandidateInversions(w)
		if cand > 0 {
			frac := float64(inv) / float64(cand)
			res.Detail += fmt.Sprintf(" inversions=%d/%d(%.1f%%)", inv, cand, frac*100)
			res.Checked += cand
			if frac > opts.MaxInversionFrac {
				res.Violations = append(res.Violations, Violation{
					Property: PropMessagePriority,
					Detail: fmt.Sprintf("%.1f%% of priority candidate pairs inverted (bound %.1f%%)",
						frac*100, opts.MaxInversionFrac*100),
				})
			}
		}
	}
	return res
}

// CandidateInversions implements the stricter model the paper sketches
// in §5: "The strictness of message priority analysis can be enhanced by
// building a model that indicates whether two messages are candidates
// for priority considerations." Two messages delivered to the same
// consumer are a candidate pair when they were concurrently pending in
// the provider — each was sent before either was delivered — and carry
// different priorities. The pair is inverted when the lower-priority
// message was delivered first. Returns (inverted, candidates).
func CandidateInversions(w *World) (inverted, candidates int) {
	for _, deliveries := range w.DeliveriesByConsumer {
		type rec struct {
			sent     time.Time
			deliv    time.Time
			priority jms.Priority
		}
		var recs []rec
		for _, d := range deliveries {
			send, ok := w.SendByUID[d.UID]
			if !ok || d.Redelivered {
				continue
			}
			recs = append(recs, rec{sent: send.Start, deliv: d.Time, priority: send.Priority})
		}
		for i := 0; i < len(recs); i++ {
			for j := i + 1; j < len(recs); j++ {
				a, b := recs[i], recs[j]
				if a.priority == b.priority {
					continue
				}
				// Concurrently pending: both sent before the earlier of
				// the two deliveries.
				firstDeliv := a.deliv
				if b.deliv.Before(firstDeliv) {
					firstDeliv = b.deliv
				}
				if a.sent.After(firstDeliv) || b.sent.After(firstDeliv) {
					continue
				}
				candidates++
				lo, hi := a, b
				if b.priority < a.priority {
					lo, hi = b, a
				}
				if lo.deliv.Before(hi.deliv) {
					inverted++
				}
			}
		}
	}
	return inverted, candidates
}
