package tracedb

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"jmsharness/internal/trace"
)

func sampleEvents() []trace.Event {
	epoch := time.Unix(3000, 0)
	at := func(ms int) time.Time { return epoch.Add(time.Duration(ms) * time.Millisecond) }
	return []trace.Event{
		{Node: "n", Seq: 1, Time: at(0), Type: trace.EventSendStart, MsgUID: "p/1", Producer: "p"},
		{Node: "n", Seq: 2, Time: at(1), Type: trace.EventSendEnd, MsgUID: "p/1", Producer: "p"},
		{Node: "n", Seq: 3, Time: at(10), Type: trace.EventDeliver, MsgUID: "p/1", Consumer: "c1", Endpoint: "queue:q"},
		{Node: "n", Seq: 4, Time: at(20), Type: trace.EventSendStart, MsgUID: "p/2", Producer: "p"},
		{Node: "n", Seq: 5, Time: at(21), Type: trace.EventSendEnd, MsgUID: "p/2", Producer: "p", Err: "failed"},
		{Node: "n", Seq: 6, Time: at(30), Type: trace.EventDeliver, MsgUID: "p/2", Consumer: "c2", Endpoint: "queue:q"},
	}
}

func TestInsertAndCount(t *testing.T) {
	db := New()
	if db.Count("t1") != 0 {
		t.Error("empty count nonzero")
	}
	for _, ev := range sampleEvents() {
		db.Insert("t1", ev)
	}
	if db.Count("t1") != 6 {
		t.Errorf("Count = %d", db.Count("t1"))
	}
	if got := db.Tests(); len(got) != 1 || got[0] != "t1" {
		t.Errorf("Tests = %v", got)
	}
}

func TestBulkLoadMatchesInsert(t *testing.T) {
	a, b := New(), New()
	for _, ev := range sampleEvents() {
		a.Insert("t", ev)
	}
	b.BulkLoad("t", sampleEvents())
	if a.Count("t") != b.Count("t") {
		t.Error("bulk load diverges from insert")
	}
	if len(a.Delays("t")) != len(b.Delays("t")) {
		t.Error("query results diverge")
	}
}

func TestSelect(t *testing.T) {
	db := New()
	db.BulkLoad("t", sampleEvents())
	all := db.Select("t", nil)
	if len(all) != 6 {
		t.Errorf("Select(nil) = %d", len(all))
	}
	sends := db.Select("t", func(e *trace.Event) bool { return e.Type == trace.EventSendEnd })
	if len(sends) != 2 {
		t.Errorf("filtered select = %d", len(sends))
	}
	if db.Select("missing", nil) != nil {
		t.Error("unknown test should be empty")
	}
}

func TestByType(t *testing.T) {
	db := New()
	db.BulkLoad("t", sampleEvents())
	delivers := db.ByType("t", trace.EventDeliver)
	if len(delivers) != 2 {
		t.Errorf("ByType = %d", len(delivers))
	}
	if len(db.ByType("t", trace.EventCrash)) != 0 {
		t.Error("no crashes expected")
	}
}

func TestMessageHistory(t *testing.T) {
	db := New()
	db.BulkLoad("t", sampleEvents())
	hist := db.MessageHistory("t", "p/1")
	if len(hist) != 3 {
		t.Errorf("history = %d events", len(hist))
	}
	if hist[0].Type != trace.EventSendStart || hist[2].Type != trace.EventDeliver {
		t.Error("history order wrong")
	}
}

func TestConsumerEvents(t *testing.T) {
	db := New()
	db.BulkLoad("t", sampleEvents())
	if got := db.ConsumerEvents("t", "c1"); len(got) != 1 || got[0].MsgUID != "p/1" {
		t.Errorf("ConsumerEvents = %v", got)
	}
}

func TestDelays(t *testing.T) {
	db := New()
	db.BulkLoad("t", sampleEvents())
	rows := db.Delays("t")
	if len(rows) != 2 {
		t.Fatalf("Delays = %d rows", len(rows))
	}
	if rows[0].Delay != 10*time.Millisecond || rows[0].Producer != "p" || rows[0].Consumer != "c1" {
		t.Errorf("row = %+v", rows[0])
	}
}

func TestUnmatchedDeliveries(t *testing.T) {
	db := New()
	db.BulkLoad("t", sampleEvents())
	// p/2's send failed, so its delivery is unmatched.
	bad := db.UnmatchedDeliveries("t")
	if len(bad) != 1 || bad[0].MsgUID != "p/2" {
		t.Errorf("UnmatchedDeliveries = %v", bad)
	}
}

func TestDrop(t *testing.T) {
	db := New()
	db.BulkLoad("t", sampleEvents())
	db.Drop("t")
	if db.Count("t") != 0 {
		t.Error("drop did not remove table")
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	db := New()
	db.BulkLoad("t1", sampleEvents())
	db.BulkLoad("t2", sampleEvents()[:2])
	var buf bytes.Buffer
	if err := db.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Count("t1") != 6 || loaded.Count("t2") != 2 {
		t.Errorf("counts after load: %d, %d", loaded.Count("t1"), loaded.Count("t2"))
	}
	// Indexes rebuilt after load.
	if len(loaded.Delays("t1")) != 2 {
		t.Error("delays query broken after load")
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := Load(strings.NewReader("{broken")); err == nil {
		t.Error("garbage accepted")
	}
}

func TestSaveLoadFile(t *testing.T) {
	db := New()
	db.BulkLoad("t", sampleEvents())
	path := t.TempDir() + "/db.json"
	if err := db.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Count("t") != 6 {
		t.Error("file round trip lost events")
	}
	if _, err := LoadFile(t.TempDir() + "/missing.json"); err == nil {
		t.Error("missing file accepted")
	}
}

func TestConcurrentInsertAndQuery(t *testing.T) {
	db := New()
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 1000; i++ {
			db.Insert("t", trace.Event{Node: "n", Seq: int64(i + 1),
				Type: trace.EventAck, MsgUID: "p/1"})
		}
	}()
	for i := 0; i < 100; i++ {
		_ = db.Count("t")
		_ = db.MessageHistory("t", "p/1")
	}
	<-done
	if db.Count("t") != 1000 {
		t.Errorf("Count = %d", db.Count("t"))
	}
}
