// Package tracedb is an embedded, indexed event store standing in for
// the paper's results database: "the test logs are collected and
// returned to the daemon prince. The daemon prince then inserts the logs
// into a SQL database ... A set of SQL statements are then used to
// verify correctness and to determine performance" (§4, where the
// database was Microsoft Access over JDBC).
//
// Events are stored per test in insertion order with hash indexes over
// message UID, event type, consumer and endpoint; the typed query
// helpers correspond to the SQL statements the paper describes. The
// §4.1 experience — per-event loading becomes the bottleneck at
// performance-test volumes, and streaming aggregation in the prince is
// the fix — is reproduced as a benchmark comparing BulkLoad+queries
// against analysis.StreamAggregator.
package tracedb

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"sync"
	"time"

	"jmsharness/internal/trace"
)

// Table holds one test's events with secondary indexes.
type Table struct {
	name   string
	events []trace.Event

	byMsg      map[string][]int
	byType     map[trace.EventType][]int
	byConsumer map[string][]int
	byEndpoint map[string][]int
}

func newTable(name string) *Table {
	return &Table{
		name:       name,
		byMsg:      map[string][]int{},
		byType:     map[trace.EventType][]int{},
		byConsumer: map[string][]int{},
		byEndpoint: map[string][]int{},
	}
}

// insert appends one event and maintains the indexes.
func (t *Table) insert(ev trace.Event) {
	idx := len(t.events)
	t.events = append(t.events, ev)
	if ev.MsgUID != "" {
		t.byMsg[ev.MsgUID] = append(t.byMsg[ev.MsgUID], idx)
	}
	t.byType[ev.Type] = append(t.byType[ev.Type], idx)
	if ev.Consumer != "" {
		t.byConsumer[ev.Consumer] = append(t.byConsumer[ev.Consumer], idx)
	}
	if ev.Endpoint != "" {
		t.byEndpoint[ev.Endpoint] = append(t.byEndpoint[ev.Endpoint], idx)
	}
}

// Len returns the number of stored events.
func (t *Table) Len() int { return len(t.events) }

// DB is a collection of per-test tables. It is safe for concurrent use.
type DB struct {
	mu     sync.RWMutex
	tables map[string]*Table
}

// New returns an empty database.
func New() *DB {
	return &DB{tables: map[string]*Table{}}
}

// Insert stores one event under the named test.
func (db *DB) Insert(test string, ev trace.Event) {
	db.mu.Lock()
	defer db.mu.Unlock()
	t, ok := db.tables[test]
	if !ok {
		t = newTable(test)
		db.tables[test] = t
	}
	t.insert(ev)
}

// BulkLoad stores a whole trace under the named test, preallocating
// storage for the batch.
func (db *DB) BulkLoad(test string, events []trace.Event) {
	db.mu.Lock()
	defer db.mu.Unlock()
	t, ok := db.tables[test]
	if !ok {
		t = newTable(test)
		db.tables[test] = t
	}
	if need := len(t.events) + len(events); need > cap(t.events) {
		grown := make([]trace.Event, len(t.events), need)
		copy(grown, t.events)
		t.events = grown
	}
	for _, ev := range events {
		t.insert(ev)
	}
}

// Tests returns the stored test names, sorted.
func (db *DB) Tests() []string {
	db.mu.RLock()
	defer db.mu.RUnlock()
	out := make([]string, 0, len(db.tables))
	for name := range db.tables {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Drop removes a test's table.
func (db *DB) Drop(test string) {
	db.mu.Lock()
	defer db.mu.Unlock()
	delete(db.tables, test)
}

// Count returns the number of events stored for a test.
func (db *DB) Count(test string) int {
	db.mu.RLock()
	defer db.mu.RUnlock()
	if t, ok := db.tables[test]; ok {
		return t.Len()
	}
	return 0
}

// Select returns the events of a test satisfying pred, in insertion
// order. A nil pred selects everything.
func (db *DB) Select(test string, pred func(*trace.Event) bool) []trace.Event {
	db.mu.RLock()
	defer db.mu.RUnlock()
	t, ok := db.tables[test]
	if !ok {
		return nil
	}
	var out []trace.Event
	for i := range t.events {
		if pred == nil || pred(&t.events[i]) {
			out = append(out, t.events[i])
		}
	}
	return out
}

// ByType returns the events of the given type, using the type index.
func (db *DB) ByType(test string, typ trace.EventType) []trace.Event {
	db.mu.RLock()
	defer db.mu.RUnlock()
	t, ok := db.tables[test]
	if !ok {
		return nil
	}
	idxs := t.byType[typ]
	out := make([]trace.Event, len(idxs))
	for i, idx := range idxs {
		out[i] = t.events[idx]
	}
	return out
}

// MessageHistory returns every event referencing a message UID, in
// insertion order — the join the integrity SQL performs.
func (db *DB) MessageHistory(test, msgUID string) []trace.Event {
	db.mu.RLock()
	defer db.mu.RUnlock()
	t, ok := db.tables[test]
	if !ok {
		return nil
	}
	idxs := t.byMsg[msgUID]
	out := make([]trace.Event, len(idxs))
	for i, idx := range idxs {
		out[i] = t.events[idx]
	}
	return out
}

// ConsumerEvents returns a consumer's events in insertion order.
func (db *DB) ConsumerEvents(test, consumer string) []trace.Event {
	db.mu.RLock()
	defer db.mu.RUnlock()
	t, ok := db.tables[test]
	if !ok {
		return nil
	}
	idxs := t.byConsumer[consumer]
	out := make([]trace.Event, len(idxs))
	for i, idx := range idxs {
		out[i] = t.events[idx]
	}
	return out
}

// DelayRow is one send→deliver match, the row shape behind the delay
// and fairness SQL.
type DelayRow struct {
	MsgUID   string
	Producer string
	Consumer string
	Endpoint string
	SentAt   time.Time
	Delay    time.Duration
}

// Delays joins send-start events with deliveries per message UID.
func (db *DB) Delays(test string) []DelayRow {
	db.mu.RLock()
	defer db.mu.RUnlock()
	t, ok := db.tables[test]
	if !ok {
		return nil
	}
	var out []DelayRow
	for i := range t.events {
		ev := &t.events[i]
		if ev.Type != trace.EventDeliver {
			continue
		}
		for _, j := range t.byMsg[ev.MsgUID] {
			se := &t.events[j]
			if se.Type != trace.EventSendStart {
				continue
			}
			out = append(out, DelayRow{
				MsgUID:   ev.MsgUID,
				Producer: se.Producer,
				Consumer: ev.Consumer,
				Endpoint: ev.Endpoint,
				SentAt:   se.Time,
				Delay:    ev.Time.Sub(se.Time),
			})
			break
		}
	}
	return out
}

// UnmatchedDeliveries returns deliveries of messages with no successful
// send-end — the integrity SQL query.
func (db *DB) UnmatchedDeliveries(test string) []trace.Event {
	db.mu.RLock()
	defer db.mu.RUnlock()
	t, ok := db.tables[test]
	if !ok {
		return nil
	}
	var out []trace.Event
	for i := range t.events {
		ev := &t.events[i]
		if ev.Type != trace.EventDeliver {
			continue
		}
		sent := false
		for _, j := range t.byMsg[ev.MsgUID] {
			se := &t.events[j]
			if se.Type == trace.EventSendEnd && se.Err == "" {
				sent = true
				break
			}
		}
		if !sent {
			out = append(out, *ev)
		}
	}
	return out
}

// savedDB is the JSON persistence shape.
type savedDB struct {
	Tests map[string][]trace.Event `json:"tests"`
}

// Save writes the database as JSON.
func (db *DB) Save(w io.Writer) error {
	db.mu.RLock()
	out := savedDB{Tests: map[string][]trace.Event{}}
	for name, t := range db.tables {
		events := make([]trace.Event, len(t.events))
		copy(events, t.events)
		out.Tests[name] = events
	}
	db.mu.RUnlock()
	enc := json.NewEncoder(w)
	if err := enc.Encode(out); err != nil {
		return fmt.Errorf("tracedb: saving: %w", err)
	}
	return nil
}

// SaveFile writes the database to a file.
func (db *DB) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("tracedb: creating %s: %w", path, err)
	}
	if err := db.Save(f); err != nil {
		_ = f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("tracedb: closing %s: %w", path, err)
	}
	return nil
}

// Load reads a database saved by Save.
func Load(r io.Reader) (*DB, error) {
	var in savedDB
	if err := json.NewDecoder(r).Decode(&in); err != nil {
		return nil, fmt.Errorf("tracedb: loading: %w", err)
	}
	db := New()
	for name, events := range in.Tests {
		db.BulkLoad(name, events)
	}
	return db, nil
}

// LoadFile reads a database from a file.
func LoadFile(path string) (*DB, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("tracedb: opening %s: %w", path, err)
	}
	defer f.Close()
	return Load(f)
}
