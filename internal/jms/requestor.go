package jms

import (
	"fmt"
	"sync/atomic"
	"time"
)

// Requestor implements the JMS request/reply pattern (the
// QueueRequestor/TopicRequestor helpers): each request is sent with a
// fresh correlation ID and a ReplyTo pointing at a temporary queue owned
// by the requestor's connection; Request blocks until the matching reply
// arrives or the timeout elapses. A Requestor is for use by one
// goroutine at a time, like the session it wraps.
type Requestor struct {
	sess     Session
	producer Producer
	replyTo  Queue
	consumer Consumer
	counter  atomic.Int64
	closed   bool
}

// NewRequestor creates a requestor sending requests to dest.
func NewRequestor(sess Session, dest Destination) (*Requestor, error) {
	producer, err := sess.CreateProducer(dest)
	if err != nil {
		return nil, err
	}
	replyTo, err := sess.CreateTemporaryQueue()
	if err != nil {
		_ = producer.Close()
		return nil, err
	}
	consumer, err := sess.CreateConsumer(replyTo)
	if err != nil {
		_ = producer.Close()
		return nil, err
	}
	return &Requestor{sess: sess, producer: producer, replyTo: replyTo, consumer: consumer}, nil
}

// ReplyTo returns the requestor's temporary reply queue.
func (r *Requestor) ReplyTo() Queue { return r.replyTo }

// Request sends msg and waits up to timeout for the correlated reply.
// It returns (nil, nil) on timeout. Late replies to earlier timed-out
// requests are discarded.
func (r *Requestor) Request(msg *Message, opts SendOptions, timeout time.Duration) (*Message, error) {
	if r.closed {
		return nil, ErrClosed
	}
	corr := fmt.Sprintf("req-%d", r.counter.Add(1))
	msg.CorrelationID = corr
	msg.ReplyTo = r.replyTo
	if err := r.producer.Send(msg, opts); err != nil {
		return nil, err
	}
	deadline := time.Now().Add(timeout)
	for {
		remaining := time.Until(deadline)
		if remaining <= 0 {
			return nil, nil
		}
		reply, err := r.consumer.Receive(remaining)
		if err != nil {
			return nil, err
		}
		if reply == nil {
			return nil, nil
		}
		if reply.CorrelationID == corr {
			return reply, nil
		}
		// A stale reply to a request that already timed out; drop it.
	}
}

// Close releases the requestor's producer and consumer. The temporary
// queue itself is deleted when the connection closes.
func (r *Requestor) Close() error {
	if r.closed {
		return nil
	}
	r.closed = true
	err := r.consumer.Close()
	if perr := r.producer.Close(); err == nil {
		err = perr
	}
	return err
}

// Reply is the server-side convenience: it sends response to the
// request's ReplyTo destination, correlated to the request. producer
// must be an unidentified producer (created with a nil destination) on
// any session.
func Reply(producer Producer, request, response *Message, opts SendOptions) error {
	if request.ReplyTo == nil {
		return fmt.Errorf("%w: request has no reply-to destination", ErrInvalidDestination)
	}
	response.CorrelationID = request.CorrelationID
	return producer.SendTo(request.ReplyTo, response, opts)
}
