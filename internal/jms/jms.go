// Package jms defines a Go messaging API with the semantic surface of the
// Java Message Service 1.0.2 specification, which is the interface the
// paper's test harness exercises. It carries over everything the paper's
// formal model depends on (§2.1): point-to-point queues and
// publish/subscribe topics, transacted sessions and three acknowledgement
// modes, durable and non-durable subscribers, the five message body
// types, persistent and non-persistent delivery, ten priority levels, and
// time-to-live based expiration.
//
// Providers (the systems under test) implement ConnectionFactory and the
// interfaces reachable from it. The repository ships an in-memory
// reference provider (internal/broker), a TCP wire-protocol provider
// (internal/wire) and fault-injecting providers (internal/faults).
package jms

import (
	"errors"
	"fmt"
	"time"
)

// DeliveryMode selects whether a message must survive provider failures.
type DeliveryMode uint8

// Delivery modes, with the JMS numeric values.
const (
	// NonPersistent messages "should be delivered", but a failure may
	// cause them to be lost.
	NonPersistent DeliveryMode = 1
	// Persistent messages are guaranteed to eventually arrive at their
	// destination(s) even if system or communication failures occur.
	Persistent DeliveryMode = 2
)

// String returns the mode name.
func (m DeliveryMode) String() string {
	switch m {
	case NonPersistent:
		return "non-persistent"
	case Persistent:
		return "persistent"
	default:
		return fmt.Sprintf("DeliveryMode(%d)", uint8(m))
	}
}

// Valid reports whether m is a defined delivery mode.
func (m DeliveryMode) Valid() bool { return m == NonPersistent || m == Persistent }

// AckMode selects how a non-transacted session acknowledges consumed
// messages.
type AckMode uint8

// Acknowledgement modes.
const (
	// AckAuto: the session automatically acknowledges each message as it
	// is delivered.
	AckAuto AckMode = iota + 1
	// AckClient: the client explicitly acknowledges, which covers all
	// messages consumed so far on the session.
	AckClient
	// AckDupsOK: lazy acknowledgement; reduces session work but duplicate
	// messages may be delivered after a failure.
	AckDupsOK
)

// String returns the acknowledgement mode name.
func (m AckMode) String() string {
	switch m {
	case AckAuto:
		return "auto"
	case AckClient:
		return "client"
	case AckDupsOK:
		return "dups-ok"
	default:
		return fmt.Sprintf("AckMode(%d)", uint8(m))
	}
}

// Valid reports whether m is a defined acknowledgement mode.
func (m AckMode) Valid() bool { return m >= AckAuto && m <= AckDupsOK }

// Priority is a JMS message priority. JMS defines a 10-level priority
// (0–9) where 9 is the highest and 0 the lowest; providers need only make
// a best effort to deliver higher-priority messages first.
type Priority uint8

// Priority bounds and the JMS default.
const (
	PriorityLowest  Priority = 0
	PriorityDefault Priority = 4
	PriorityHighest Priority = 9
	// NumPriorities is the number of distinct priority levels.
	NumPriorities = 10
)

// Valid reports whether p is within the JMS priority range.
func (p Priority) Valid() bool { return p <= PriorityHighest }

// Common errors returned by providers.
var (
	// ErrClosed is returned by operations on a closed connection,
	// session, producer or consumer.
	ErrClosed = errors.New("jms: closed")
	// ErrNotTransacted is returned by Commit/Rollback on a
	// non-transacted session.
	ErrNotTransacted = errors.New("jms: session is not transacted")
	// ErrTransacted is returned by Acknowledge/Recover on a transacted
	// session.
	ErrTransacted = errors.New("jms: session is transacted")
	// ErrClientIDInUse is returned when a connection requests a client ID
	// already held by another active connection.
	ErrClientIDInUse = errors.New("jms: client ID already in use")
	// ErrNoClientID is returned when creating a durable subscriber on a
	// connection with no client ID.
	ErrNoClientID = errors.New("jms: connection has no client ID")
	// ErrDurableActive is returned when a durable subscription already
	// has an active subscriber, or is unsubscribed while active.
	ErrDurableActive = errors.New("jms: durable subscription has an active subscriber")
	// ErrUnknownSubscription is returned when unsubscribing a durable
	// subscription that does not exist.
	ErrUnknownSubscription = errors.New("jms: unknown durable subscription")
	// ErrInvalidDestination is returned when a destination is malformed
	// or of the wrong kind for the operation.
	ErrInvalidDestination = errors.New("jms: invalid destination")
	// ErrInvalidSelector is returned when a message selector fails to
	// parse.
	ErrInvalidSelector = errors.New("jms: invalid message selector")
	// ErrInvalidArgument is returned for out-of-range priorities,
	// delivery modes, or other malformed parameters.
	ErrInvalidArgument = errors.New("jms: invalid argument")
	// ErrOverloaded is returned by a send when the destination's bounded
	// mailbox is full and the provider's overload policy rejects rather
	// than blocks (backpressure surfaced as a typed error).
	ErrOverloaded = errors.New("jms: destination overloaded")
	// ErrFenced is returned by a provider that has been superseded after
	// a failover: its destinations were promoted elsewhere, so accepting
	// work under stale routing would split the brain.
	ErrFenced = errors.New("jms: provider fenced after failover")
)

// ConnectionFactory creates connections to a provider. It is the JNDI
// entry point of the paper's §2.1: "A typical JMS client uses JNDI to
// load a ConnectionFactory ... The connection factory is used to create
// connections with the MOM".
type ConnectionFactory interface {
	// CreateConnection opens a new connection. The connection starts in
	// stopped state: producers may send but no messages are delivered to
	// consumers until Start is called.
	CreateConnection() (Connection, error)
}

// Connection is an active link from a client to a provider.
type Connection interface {
	// SetClientID assigns the connection's client identifier, which
	// scopes durable subscription names. It must be called before any
	// session is created and fails with ErrClientIDInUse if the ID is
	// held by another active connection.
	SetClientID(id string) error
	// ClientID returns the connection's client identifier, or "".
	ClientID() string
	// CreateSession creates a session. If transacted is true, ackMode is
	// ignored; otherwise ackMode must be a valid AckMode.
	CreateSession(transacted bool, ackMode AckMode) (Session, error)
	// Start begins (or resumes) delivery of messages to this
	// connection's consumers.
	Start() error
	// Stop pauses delivery of messages to this connection's consumers.
	// Sends are unaffected.
	Stop() error
	// Close closes the connection, its sessions, and their producers and
	// consumers. Close rolls back in-progress transactions and may be
	// called more than once.
	Close() error
}

// Session is a single-threaded context for producing and consuming
// messages. Each transacted session groups its sends and receives into a
// unit of work: on commit all received messages are acknowledged and all
// outgoing messages are sent; on rollback received messages are recovered
// and outgoing messages destroyed.
type Session interface {
	// Transacted reports whether the session is transacted.
	Transacted() bool
	// AckMode returns the acknowledgement mode of a non-transacted
	// session; its value is meaningless for transacted sessions.
	AckMode() AckMode
	// CreateProducer creates a producer for dest. A nil dest creates an
	// unidentified producer whose Send calls must name a destination.
	CreateProducer(dest Destination) (Producer, error)
	// CreateConsumer creates a consumer from dest: a receiver for a
	// queue, or a non-durable subscriber for a topic.
	CreateConsumer(dest Destination) (Consumer, error)
	// CreateConsumerWithSelector creates a consumer that only receives
	// messages satisfying the given message selector (a JMS SQL-92
	// conditional expression; see internal/selector). For a queue,
	// non-matching messages remain on the queue for other receivers;
	// for a topic, non-matching messages are never delivered to the
	// subscription. An empty selector matches everything.
	CreateConsumerWithSelector(dest Destination, selectorExpr string) (Consumer, error)
	// CreateDurableSubscriber creates (or re-activates) the durable
	// subscription named name, scoped by the connection's client ID.
	CreateDurableSubscriber(topic Topic, name string) (Consumer, error)
	// CreateDurableSubscriberWithSelector is CreateDurableSubscriber
	// with a message selector. The selector is part of the durable
	// subscription's identity: reopening with a different selector is
	// equivalent to unsubscribing and resubscribing.
	CreateDurableSubscriberWithSelector(topic Topic, name, selectorExpr string) (Consumer, error)
	// CreateBrowser creates a browser that inspects the queue's waiting
	// messages without consuming them, optionally restricted by a
	// message selector.
	CreateBrowser(queue Queue, selectorExpr string) (Browser, error)
	// CreateTemporaryQueue creates a queue that lives only as long as
	// the session's connection. Any producer may send to it (its name
	// travels in a message's ReplyTo header), but only consumers of the
	// creating connection may receive from it. It is the substrate of
	// the request/reply pattern (see Requestor).
	CreateTemporaryQueue() (Queue, error)
	// Unsubscribe deletes the durable subscription named name. It fails
	// with ErrDurableActive if the subscription has an active consumer.
	Unsubscribe(name string) error
	// Commit commits the session's current transaction and starts a new
	// one. It fails with ErrNotTransacted on non-transacted sessions.
	Commit() error
	// Rollback aborts the session's current transaction and starts a new
	// one: sent messages are destroyed, received messages recovered.
	Rollback() error
	// Acknowledge acknowledges all messages consumed so far by this
	// session (client-acknowledge mode).
	Acknowledge() error
	// Recover stops message delivery, marks unacknowledged messages
	// redelivered, and restarts delivery from the oldest
	// unacknowledged message (non-transacted sessions only).
	Recover() error
	// Close closes the session and its producers and consumers, rolling
	// back an in-progress transaction.
	Close() error
}

// SendOptions carries the per-send quality-of-service parameters.
type SendOptions struct {
	// Mode selects persistent or non-persistent delivery.
	Mode DeliveryMode
	// Priority is the 0–9 message priority.
	Priority Priority
	// TTL is the message time-to-live; zero means the message never
	// expires.
	TTL time.Duration
}

// DefaultSendOptions returns the JMS defaults: persistent delivery,
// priority 4, no expiration.
func DefaultSendOptions() SendOptions {
	return SendOptions{Mode: Persistent, Priority: PriorityDefault}
}

// Validate reports whether the options are well formed.
func (o SendOptions) Validate() error {
	if !o.Mode.Valid() {
		return fmt.Errorf("%w: delivery mode %d", ErrInvalidArgument, o.Mode)
	}
	if !o.Priority.Valid() {
		return fmt.Errorf("%w: priority %d", ErrInvalidArgument, o.Priority)
	}
	if o.TTL < 0 {
		return fmt.Errorf("%w: negative TTL %v", ErrInvalidArgument, o.TTL)
	}
	return nil
}

// Producer sends messages to a destination. In the paper's terminology,
// "senders to a queue and publishers on a topic are collectively termed
// message producers".
type Producer interface {
	// Destination returns the producer's destination, or nil for an
	// unidentified producer.
	Destination() Destination
	// Send sends msg to the producer's destination with opts. On return
	// (with nil error and a non-transacted session) the message is
	// "sent" in the sense of the formal model's Definition 1. The
	// provider assigns msg.ID and msg.Timestamp.
	Send(msg *Message, opts SendOptions) error
	// SendTo sends to an explicit destination (unidentified producers).
	SendTo(dest Destination, msg *Message, opts SendOptions) error
	// Close closes the producer.
	Close() error
}

// Completion resolves an asynchronous send: it blocks until the message
// is fully accepted by the provider (durably recorded, for persistent
// delivery) and returns the send's final error. Call it exactly once.
type Completion func() error

// CompletedSend is the completion of a send that was already fully
// accepted when SendAsync returned (non-persistent delivery, or a
// transacted session where acceptance happens at commit).
var CompletedSend Completion = func() error { return nil }

// AsyncProducer is an optional Producer extension for pipelined sends.
// SendAsync stages msg exactly as Send would — the provider assigns
// msg.ID and msg.Timestamp before returning, and per-producer order is
// the call order — but returns before the message is durable, handing
// back a Completion for the durability wait. A producer that keeps many
// completions outstanding turns the per-send durability round trip into
// a window of concurrently committing sends; Send is the special case
// of a window of 1. JMS 1.0.2 has no asynchronous send, so this is a
// provider extension (discovered by type assertion), but its semantics
// are chosen so that Send(msg) ≡ the pair SendAsync(msg) + Completion.
type AsyncProducer interface {
	Producer
	SendAsync(msg *Message, opts SendOptions) (Completion, error)
}

// Listener is an asynchronous message callback. A session dispatches to
// its listeners serially.
type Listener func(*Message)

// Browser inspects a queue without consuming from it (the JMS
// QueueBrowser). Browsing is a point-in-time snapshot: messages may be
// consumed or expire between Enumerate calls.
type Browser interface {
	// Queue returns the browsed queue.
	Queue() Queue
	// Enumerate returns the unexpired messages currently waiting on the
	// queue, in delivery order (priority, then arrival), restricted to
	// those matching the browser's selector. The returned messages are
	// copies; mutating them does not affect the queue.
	Enumerate() ([]*Message, error)
	// Close closes the browser.
	Close() error
}

// Consumer receives messages from a destination. In the paper's
// terminology, "receivers from a queue or subscribers to a topic are
// message consumers".
type Consumer interface {
	// Destination returns the consumer's destination.
	Destination() Destination
	// EndpointID identifies the consumer group this consumer belongs to:
	// "queue:<name>" for a queue receiver, "sub:<clientID>:<name>" for a
	// durable subscriber, and "sub:anon:<uid>" for the artificial
	// subscription allocated to a non-durable subscriber for its
	// lifetime. The test harness logs it so traces can be analysed per
	// consumer group (Definitions 4–6 of the formal model).
	EndpointID() string
	// Receive blocks until a message arrives, the timeout elapses, or
	// the consumer is closed. timeout <= 0 blocks indefinitely. It
	// returns (nil, nil) when the timeout elapses with no message, and
	// ErrClosed once closed.
	Receive(timeout time.Duration) (*Message, error)
	// ReceiveNoWait returns the next message if one is immediately
	// available, else (nil, nil).
	ReceiveNoWait() (*Message, error)
	// SetListener installs an asynchronous callback; incompatible with
	// concurrent synchronous Receive calls. A nil listener removes it.
	SetListener(l Listener) error
	// Close closes the consumer. For a non-durable subscriber this
	// terminates the subscription; for a durable subscriber the
	// subscription continues to accumulate messages.
	Close() error
}
