package jms

import "fmt"

// DestinationKind discriminates queues from topics.
type DestinationKind uint8

// Destination kinds.
const (
	KindQueue DestinationKind = iota + 1
	KindTopic
)

// String returns the kind name.
func (k DestinationKind) String() string {
	switch k {
	case KindQueue:
		return "queue"
	case KindTopic:
		return "topic"
	default:
		return fmt.Sprintf("DestinationKind(%d)", uint8(k))
	}
}

// Destination names a message endpoint: a point-to-point queue or a
// publish/subscribe topic. The two concrete implementations are Queue and
// Topic.
type Destination interface {
	// Name returns the destination name.
	Name() string
	// Kind returns whether this is a queue or a topic.
	Kind() DestinationKind
	// String renders the destination as "kind:name".
	String() string
}

// Queue is a point-to-point destination: messages wait at the queue until
// a receiver picks them up, and each message is consumed by exactly one
// receiver.
type Queue string

var _ Destination = Queue("")

// Name returns the queue name.
func (q Queue) Name() string { return string(q) }

// Kind returns KindQueue.
func (q Queue) Kind() DestinationKind { return KindQueue }

// String renders the queue as "queue:name".
func (q Queue) String() string { return "queue:" + string(q) }

// Topic is a publish/subscribe destination: each message published on a
// topic is delivered to every subscription on that topic.
type Topic string

var _ Destination = Topic("")

// Name returns the topic name.
func (t Topic) Name() string { return string(t) }

// Kind returns KindTopic.
func (t Topic) Kind() DestinationKind { return KindTopic }

// String renders the topic as "topic:name".
func (t Topic) String() string { return "topic:" + string(t) }

// ParseDestination parses the "queue:name" / "topic:name" rendering
// produced by Destination.String.
func ParseDestination(s string) (Destination, error) {
	const (
		qp = "queue:"
		tp = "topic:"
	)
	switch {
	case len(s) > len(qp) && s[:len(qp)] == qp:
		return Queue(s[len(qp):]), nil
	case len(s) > len(tp) && s[:len(tp)] == tp:
		return Topic(s[len(tp):]), nil
	default:
		return nil, fmt.Errorf("%w: %q", ErrInvalidDestination, s)
	}
}

// DestinationEqual reports whether two destinations name the same
// endpoint, treating nil as equal only to nil.
func DestinationEqual(a, b Destination) bool {
	if a == nil || b == nil {
		return a == nil && b == nil
	}
	return a.Kind() == b.Kind() && a.Name() == b.Name()
}
