package jms

import (
	"encoding"
	"encoding/binary"
	"fmt"
	"math"
	"time"
)

// The message wire format is a compact, deterministic binary encoding
// shared by the stable store's write-ahead log (internal/store) and the
// TCP wire protocol (internal/wire). All integers are little-endian;
// strings and byte slices are length-prefixed with a uvarint.

// Encoder appends primitive values to a byte buffer.
type Encoder struct {
	buf []byte
}

// NewEncoder returns an encoder writing into buf (which may be nil).
func NewEncoder(buf []byte) *Encoder { return &Encoder{buf: buf} }

// Bytes returns the encoded buffer.
func (e *Encoder) Bytes() []byte { return e.buf }

// Uvarint appends an unsigned varint.
func (e *Encoder) Uvarint(v uint64) { e.buf = binary.AppendUvarint(e.buf, v) }

// Varint appends a signed varint.
func (e *Encoder) Varint(v int64) { e.buf = binary.AppendVarint(e.buf, v) }

// Byte appends a single byte.
func (e *Encoder) Byte(b byte) { e.buf = append(e.buf, b) }

// Bool appends a boolean as one byte.
func (e *Encoder) Bool(b bool) {
	if b {
		e.Byte(1)
	} else {
		e.Byte(0)
	}
}

// Float64 appends an IEEE 754 double.
func (e *Encoder) Float64(f float64) {
	e.buf = binary.LittleEndian.AppendUint64(e.buf, math.Float64bits(f))
}

// String appends a length-prefixed string.
func (e *Encoder) String(s string) {
	e.Uvarint(uint64(len(s)))
	e.buf = append(e.buf, s...)
}

// Blob appends a length-prefixed byte slice.
func (e *Encoder) Blob(b []byte) {
	e.Uvarint(uint64(len(b)))
	e.buf = append(e.buf, b...)
}

// Time appends a time as UnixNano varint; the zero time is encoded as a
// leading 0 flag.
func (e *Encoder) Time(t time.Time) {
	if t.IsZero() {
		e.Byte(0)
		return
	}
	e.Byte(1)
	e.Varint(t.UnixNano())
}

// Decoder consumes primitive values from a byte buffer.
type Decoder struct {
	buf []byte
	pos int
	err error
}

// NewDecoder returns a decoder reading from buf.
func NewDecoder(buf []byte) *Decoder { return &Decoder{buf: buf} }

// Err returns the first decode error encountered, if any.
func (d *Decoder) Err() error { return d.err }

// Remaining returns the number of unread bytes.
func (d *Decoder) Remaining() int { return len(d.buf) - d.pos }

func (d *Decoder) fail(what string) {
	if d.err == nil {
		d.err = fmt.Errorf("jms: truncated or corrupt encoding at byte %d decoding %s", d.pos, what)
	}
}

// Uvarint reads an unsigned varint.
func (d *Decoder) Uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.buf[d.pos:])
	if n <= 0 {
		d.fail("uvarint")
		return 0
	}
	d.pos += n
	return v
}

// Varint reads a signed varint.
func (d *Decoder) Varint() int64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.buf[d.pos:])
	if n <= 0 {
		d.fail("varint")
		return 0
	}
	d.pos += n
	return v
}

// Byte reads a single byte.
func (d *Decoder) Byte() byte {
	if d.err != nil {
		return 0
	}
	if d.pos >= len(d.buf) {
		d.fail("byte")
		return 0
	}
	b := d.buf[d.pos]
	d.pos++
	return b
}

// Bool reads a boolean.
func (d *Decoder) Bool() bool { return d.Byte() != 0 }

// Float64 reads an IEEE 754 double.
func (d *Decoder) Float64() float64 {
	if d.err != nil {
		return 0
	}
	if d.pos+8 > len(d.buf) {
		d.fail("float64")
		return 0
	}
	v := binary.LittleEndian.Uint64(d.buf[d.pos:])
	d.pos += 8
	return math.Float64frombits(v)
}

// String reads a length-prefixed string.
func (d *Decoder) String() string {
	n := d.Uvarint()
	if d.err != nil {
		return ""
	}
	if n > uint64(len(d.buf)-d.pos) {
		d.fail("string")
		return ""
	}
	s := string(d.buf[d.pos : d.pos+int(n)])
	d.pos += int(n)
	return s
}

// Blob reads a length-prefixed byte slice (copied out of the buffer).
func (d *Decoder) Blob() []byte {
	n := d.Uvarint()
	if d.err != nil {
		return nil
	}
	if n > uint64(len(d.buf)-d.pos) {
		d.fail("blob")
		return nil
	}
	b := make([]byte, n)
	copy(b, d.buf[d.pos:d.pos+int(n)])
	d.pos += int(n)
	return b
}

// Time reads a time encoded by Encoder.Time.
func (d *Decoder) Time() time.Time {
	if d.Byte() == 0 {
		return time.Time{}
	}
	if d.err != nil {
		return time.Time{}
	}
	return time.Unix(0, d.Varint()).UTC()
}

// encodeValue appends a Value.
func encodeValue(e *Encoder, v Value) {
	e.Byte(byte(v.kind))
	switch v.kind {
	case KindBool:
		e.Bool(v.b)
	case KindInt64:
		e.Varint(v.i)
	case KindFloat64:
		e.Float64(v.f)
	case KindString:
		e.String(v.s)
	case KindBytes:
		e.Blob(v.bs)
	}
}

// decodeValue reads a Value.
func decodeValue(d *Decoder) Value {
	kind := ValueKind(d.Byte())
	switch kind {
	case KindBool:
		return Bool(d.Bool())
	case KindInt64:
		return Int64(d.Varint())
	case KindFloat64:
		return Float64(d.Float64())
	case KindString:
		return Str(d.String())
	case KindBytes:
		return Bytes(d.Blob())
	default:
		d.fail("value kind")
		return Value{}
	}
}

// encodeBody appends a Body, tagged by kind; a nil body is tag 0.
func encodeBody(e *Encoder, b Body) {
	if b == nil {
		e.Byte(0)
		return
	}
	e.Byte(byte(b.Kind()))
	switch body := b.(type) {
	case TextBody:
		e.String(string(body))
	case BytesBody:
		e.Blob(body)
	case MapBody:
		keys := body.SortedKeys()
		e.Uvarint(uint64(len(keys)))
		for _, k := range keys {
			e.String(k)
			encodeValue(e, body[k])
		}
	case StreamBody:
		e.Uvarint(uint64(len(body)))
		for _, v := range body {
			encodeValue(e, v)
		}
	case ObjectBody:
		e.String(body.TypeName)
		e.Blob(body.Data)
	}
}

// decodeBody reads a Body.
func decodeBody(d *Decoder) Body {
	kind := BodyKind(d.Byte())
	switch kind {
	case 0:
		return nil
	case BodyText:
		return TextBody(d.String())
	case BodyBytes:
		return BytesBody(d.Blob())
	case BodyMap:
		n := d.Uvarint()
		if d.err != nil || n > uint64(d.Remaining()) {
			d.fail("map body size")
			return nil
		}
		m := make(MapBody, n)
		for i := uint64(0); i < n && d.err == nil; i++ {
			k := d.String()
			m[k] = decodeValue(d)
		}
		return m
	case BodyStream:
		n := d.Uvarint()
		if d.err != nil || n > uint64(d.Remaining()) {
			d.fail("stream body size")
			return nil
		}
		s := make(StreamBody, 0, n)
		for i := uint64(0); i < n && d.err == nil; i++ {
			s = append(s, decodeValue(d))
		}
		return s
	case BodyObject:
		return ObjectBody{TypeName: d.String(), Data: d.Blob()}
	default:
		d.fail("body kind")
		return nil
	}
}

// messageCodecVersion guards against decoding logs written by an
// incompatible release.
const messageCodecVersion = 1

var (
	_ encoding.BinaryMarshaler   = (*Message)(nil)
	_ encoding.BinaryUnmarshaler = (*Message)(nil)
)

// MarshalBinary encodes the message in the shared wire format.
func (m *Message) MarshalBinary() ([]byte, error) {
	e := NewEncoder(make([]byte, 0, 64+m.BodySize()))
	m.EncodeTo(e)
	return e.Bytes(), nil
}

// EncodeTo appends the message encoding to e.
func (m *Message) EncodeTo(e *Encoder) {
	e.Byte(messageCodecVersion)
	e.String(m.ID)
	if m.Destination == nil {
		e.Byte(0)
	} else {
		e.Byte(byte(m.Destination.Kind()))
		e.String(m.Destination.Name())
	}
	e.Byte(byte(m.Mode))
	e.Byte(byte(m.Priority))
	e.Time(m.Timestamp)
	e.Time(m.Expiration)
	e.String(m.CorrelationID)
	if m.ReplyTo == nil {
		e.Byte(0)
	} else {
		e.Byte(byte(m.ReplyTo.Kind()))
		e.String(m.ReplyTo.Name())
	}
	e.String(m.Type)
	e.Bool(m.Redelivered)
	keys := m.sortedPropertyKeys()
	e.Uvarint(uint64(len(keys)))
	for _, k := range keys {
		e.String(k)
		encodeValue(e, m.Properties[k])
	}
	encodeBody(e, m.Body)
}

// UnmarshalBinary decodes a message encoded by MarshalBinary.
func (m *Message) UnmarshalBinary(data []byte) error {
	d := NewDecoder(data)
	m.DecodeFrom(d)
	if d.err != nil {
		return d.err
	}
	if d.Remaining() != 0 {
		return fmt.Errorf("jms: %d trailing bytes after message", d.Remaining())
	}
	return nil
}

// DecodeFrom reads one message encoding from d.
func (m *Message) DecodeFrom(d *Decoder) {
	if v := d.Byte(); v != messageCodecVersion {
		if d.err == nil {
			d.err = fmt.Errorf("jms: unsupported message codec version %d", v)
		}
		return
	}
	m.ID = d.String()
	switch kind := DestinationKind(d.Byte()); kind {
	case 0:
		m.Destination = nil
	case KindQueue:
		m.Destination = Queue(d.String())
	case KindTopic:
		m.Destination = Topic(d.String())
	default:
		d.fail("destination kind")
		return
	}
	m.Mode = DeliveryMode(d.Byte())
	m.Priority = Priority(d.Byte())
	m.Timestamp = d.Time()
	m.Expiration = d.Time()
	m.CorrelationID = d.String()
	switch kind := DestinationKind(d.Byte()); kind {
	case 0:
		m.ReplyTo = nil
	case KindQueue:
		m.ReplyTo = Queue(d.String())
	case KindTopic:
		m.ReplyTo = Topic(d.String())
	default:
		d.fail("reply-to kind")
		return
	}
	m.Type = d.String()
	m.Redelivered = d.Bool()
	n := d.Uvarint()
	if d.err != nil || n > uint64(d.Remaining()) {
		d.fail("property count")
		return
	}
	if n > 0 {
		m.Properties = make(map[string]Value, n)
		for i := uint64(0); i < n && d.err == nil; i++ {
			k := d.String()
			m.Properties[k] = decodeValue(d)
		}
	} else {
		m.Properties = nil
	}
	m.Body = decodeBody(d)
}
