package jms

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
	"time"
)

func TestEncoderDecoderPrimitives(t *testing.T) {
	e := NewEncoder(nil)
	e.Uvarint(300)
	e.Varint(-7)
	e.Byte(0xAB)
	e.Bool(true)
	e.Float64(3.14)
	e.String("hello")
	e.Blob([]byte{1, 2, 3})
	e.Time(time.Unix(42, 99))
	e.Time(time.Time{})

	d := NewDecoder(e.Bytes())
	if v := d.Uvarint(); v != 300 {
		t.Errorf("Uvarint = %d", v)
	}
	if v := d.Varint(); v != -7 {
		t.Errorf("Varint = %d", v)
	}
	if v := d.Byte(); v != 0xAB {
		t.Errorf("Byte = %x", v)
	}
	if !d.Bool() {
		t.Error("Bool = false")
	}
	if v := d.Float64(); v != 3.14 {
		t.Errorf("Float64 = %v", v)
	}
	if v := d.String(); v != "hello" {
		t.Errorf("String = %q", v)
	}
	if v := d.Blob(); len(v) != 3 || v[2] != 3 {
		t.Errorf("Blob = %v", v)
	}
	if v := d.Time(); !v.Equal(time.Unix(42, 99)) {
		t.Errorf("Time = %v", v)
	}
	if v := d.Time(); !v.IsZero() {
		t.Errorf("zero Time = %v", v)
	}
	if d.Err() != nil {
		t.Fatalf("decode error: %v", d.Err())
	}
	if d.Remaining() != 0 {
		t.Errorf("%d bytes remaining", d.Remaining())
	}
}

func TestDecoderTruncation(t *testing.T) {
	e := NewEncoder(nil)
	e.String("a longer string payload")
	full := e.Bytes()
	for cut := 0; cut < len(full); cut++ {
		d := NewDecoder(full[:cut])
		_ = d.String()
		if d.Err() == nil {
			t.Errorf("truncation at %d not detected", cut)
		}
	}
}

func TestDecoderErrorSticky(t *testing.T) {
	d := NewDecoder(nil)
	d.Byte()
	first := d.Err()
	if first == nil {
		t.Fatal("expected error")
	}
	d.Uvarint()
	_ = d.String()
	if d.Err() != first {
		t.Error("error should be sticky")
	}
}

func randomValue(r *rand.Rand) Value {
	switch r.Intn(5) {
	case 0:
		return Bool(r.Intn(2) == 0)
	case 1:
		return Int64(r.Int63() - r.Int63())
	case 2:
		return Float64(r.NormFloat64())
	case 3:
		return Str(randomString(r, 12))
	default:
		b := make([]byte, r.Intn(16))
		r.Read(b)
		return Bytes(b)
	}
}

func randomString(r *rand.Rand, maxLen int) string {
	n := r.Intn(maxLen)
	b := make([]byte, n)
	for i := range b {
		b[i] = byte('a' + r.Intn(26))
	}
	return string(b)
}

func randomBody(r *rand.Rand) Body {
	switch r.Intn(6) {
	case 0:
		return nil
	case 1:
		return TextBody(randomString(r, 64))
	case 2:
		b := make([]byte, r.Intn(64))
		r.Read(b)
		return BytesBody(b)
	case 3:
		m := MapBody{}
		for i := 0; i < r.Intn(6); i++ {
			m[randomString(r, 8)] = randomValue(r)
		}
		return m
	case 4:
		s := StreamBody{}
		for i := 0; i < r.Intn(6); i++ {
			s = append(s, randomValue(r))
		}
		return s
	default:
		b := make([]byte, r.Intn(32))
		r.Read(b)
		return ObjectBody{TypeName: randomString(r, 10), Data: b}
	}
}

// randomMessage builds an arbitrary message for the property test.
func randomMessage(r *rand.Rand) *Message {
	m := &Message{
		ID:            randomString(r, 20),
		Mode:          DeliveryMode(1 + r.Intn(2)),
		Priority:      Priority(r.Intn(10)),
		CorrelationID: randomString(r, 10),
		Type:          randomString(r, 10),
		Redelivered:   r.Intn(2) == 0,
		Body:          randomBody(r),
	}
	switch r.Intn(3) {
	case 0:
		m.Destination = Queue(randomString(r, 10))
	case 1:
		m.Destination = Topic(randomString(r, 10))
	}
	switch r.Intn(3) {
	case 0:
		m.ReplyTo = Queue(randomString(r, 10))
	case 1:
		m.ReplyTo = Topic(randomString(r, 10))
	}
	if r.Intn(2) == 0 {
		m.Timestamp = time.Unix(r.Int63n(1e9), r.Int63n(1e9)).UTC()
	}
	if r.Intn(2) == 0 {
		m.Expiration = time.Unix(r.Int63n(1e9), r.Int63n(1e9)).UTC()
	}
	for i := 0; i < r.Intn(5); i++ {
		m.SetProperty(randomString(r, 8), randomValue(r))
	}
	return m
}

// TestMessageCodecRoundTripProperty is the property-based test for the
// shared binary codec: every message round-trips exactly.
func TestMessageCodecRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		m := randomMessage(r)
		data, err := m.MarshalBinary()
		if err != nil {
			t.Logf("marshal: %v", err)
			return false
		}
		var got Message
		if err := got.UnmarshalBinary(data); err != nil {
			t.Logf("unmarshal: %v", err)
			return false
		}
		if !m.Equal(&got) {
			t.Logf("round trip mismatch:\n  in:  %+v\n  out: %+v", m, &got)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestMessageCodecDeterministic checks that encoding is deterministic
// (map iteration order must not leak into the encoding, since the stable
// store compares encodings).
func TestMessageCodecDeterministic(t *testing.T) {
	m := NewTextMessage("payload")
	for i := 0; i < 10; i++ {
		m.SetProperty(randomString(rand.New(rand.NewSource(int64(i))), 8), Int64(int64(i)))
	}
	first, err := m.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		again, err := m.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(first, again) {
			t.Fatal("encoding is not deterministic")
		}
	}
}

// TestMessageCodecCorruptInput checks the decoder survives arbitrary
// corruption without panicking and reports an error for truncations.
func TestMessageCodecCorruptInput(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	m := randomMessage(r)
	data, err := m.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	for cut := 0; cut < len(data); cut++ {
		var got Message
		if err := got.UnmarshalBinary(data[:cut]); err == nil {
			// Truncation mid-encoding should error; a prefix that happens
			// to decode cleanly with zero remaining is impossible because
			// every field is written unconditionally.
			t.Errorf("truncation at %d silently accepted", cut)
		}
	}
	// Random mutations must never panic.
	for trial := 0; trial < 200; trial++ {
		mutated := make([]byte, len(data))
		copy(mutated, data)
		mutated[r.Intn(len(mutated))] ^= byte(1 + r.Intn(255))
		var got Message
		_ = got.UnmarshalBinary(mutated) // must not panic
	}
}

func TestMessageCodecTrailingBytes(t *testing.T) {
	m := NewTextMessage("x")
	data, err := m.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var got Message
	if err := got.UnmarshalBinary(append(data, 0xFF)); err == nil {
		t.Error("trailing bytes should be rejected")
	}
}

func TestMessageCodecVersionCheck(t *testing.T) {
	m := NewTextMessage("x")
	data, err := m.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	data[0] = 99
	var got Message
	if err := got.UnmarshalBinary(data); err == nil {
		t.Error("bad version should be rejected")
	}
}

func BenchmarkMessageMarshal(b *testing.B) {
	m := NewBytesMessage(make([]byte, 1024))
	m.ID = "ID:broker-1-12345"
	m.Destination = Topic("bench")
	m.SetProperty("producer", Str("p1"))
	m.SetProperty("seq", Int64(123456))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := m.MarshalBinary(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMessageUnmarshal(b *testing.B) {
	m := NewBytesMessage(make([]byte, 1024))
	m.ID = "ID:broker-1-12345"
	m.Destination = Topic("bench")
	m.SetProperty("producer", Str("p1"))
	m.SetProperty("seq", Int64(123456))
	data, err := m.MarshalBinary()
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		var got Message
		if err := got.UnmarshalBinary(data); err != nil {
			b.Fatal(err)
		}
	}
}
