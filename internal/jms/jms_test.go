package jms

import (
	"testing"
	"time"
)

func TestDeliveryModeString(t *testing.T) {
	cases := map[DeliveryMode]string{
		NonPersistent:   "non-persistent",
		Persistent:      "persistent",
		DeliveryMode(7): "DeliveryMode(7)",
	}
	for mode, want := range cases {
		if got := mode.String(); got != want {
			t.Errorf("DeliveryMode(%d).String() = %q, want %q", mode, got, want)
		}
	}
}

func TestDeliveryModeValid(t *testing.T) {
	if !NonPersistent.Valid() || !Persistent.Valid() {
		t.Error("defined modes should be valid")
	}
	if DeliveryMode(0).Valid() || DeliveryMode(3).Valid() {
		t.Error("undefined modes should be invalid")
	}
}

func TestAckModeString(t *testing.T) {
	cases := map[AckMode]string{
		AckAuto:    "auto",
		AckClient:  "client",
		AckDupsOK:  "dups-ok",
		AckMode(9): "AckMode(9)",
	}
	for mode, want := range cases {
		if got := mode.String(); got != want {
			t.Errorf("AckMode(%d).String() = %q, want %q", mode, got, want)
		}
	}
}

func TestPriorityValid(t *testing.T) {
	for p := Priority(0); p <= PriorityHighest; p++ {
		if !p.Valid() {
			t.Errorf("priority %d should be valid", p)
		}
	}
	if Priority(10).Valid() {
		t.Error("priority 10 should be invalid")
	}
}

func TestSendOptionsValidate(t *testing.T) {
	if err := DefaultSendOptions().Validate(); err != nil {
		t.Errorf("default options should validate: %v", err)
	}
	bad := []SendOptions{
		{Mode: DeliveryMode(0), Priority: 4},
		{Mode: Persistent, Priority: 11},
		{Mode: Persistent, Priority: 4, TTL: -time.Second},
	}
	for i, o := range bad {
		if err := o.Validate(); err == nil {
			t.Errorf("case %d: options %+v should not validate", i, o)
		}
	}
}

func TestDefaultSendOptions(t *testing.T) {
	o := DefaultSendOptions()
	if o.Mode != Persistent || o.Priority != PriorityDefault || o.TTL != 0 {
		t.Errorf("unexpected defaults %+v", o)
	}
}

func TestDestinationRoundTrip(t *testing.T) {
	dests := []Destination{Queue("orders"), Topic("prices"), Queue("a:b"), Topic("")}
	for _, d := range dests {
		if d.Kind() == KindTopic && d.Name() == "" {
			continue // empty names don't round-trip through Parse
		}
		parsed, err := ParseDestination(d.String())
		if err != nil {
			t.Fatalf("ParseDestination(%q): %v", d.String(), err)
		}
		if !DestinationEqual(d, parsed) {
			t.Errorf("round trip of %v gave %v", d, parsed)
		}
	}
}

func TestParseDestinationErrors(t *testing.T) {
	for _, s := range []string{"", "orders", "queue:", "topic:", "stack:x"} {
		if _, err := ParseDestination(s); err == nil {
			t.Errorf("ParseDestination(%q) should fail", s)
		}
	}
}

func TestDestinationEqual(t *testing.T) {
	if !DestinationEqual(Queue("q"), Queue("q")) {
		t.Error("identical queues should be equal")
	}
	if DestinationEqual(Queue("q"), Topic("q")) {
		t.Error("queue and topic with same name should differ")
	}
	if DestinationEqual(Queue("q"), nil) {
		t.Error("destination should not equal nil")
	}
	if !DestinationEqual(nil, nil) {
		t.Error("nil should equal nil")
	}
}

func TestValueAccessors(t *testing.T) {
	if v, ok := Bool(true).AsBool(); !ok || !v {
		t.Error("Bool round trip failed")
	}
	if v, ok := Int64(-42).AsInt64(); !ok || v != -42 {
		t.Error("Int64 round trip failed")
	}
	if v, ok := Float64(2.5).AsFloat64(); !ok || v != 2.5 {
		t.Error("Float64 round trip failed")
	}
	if v, ok := Str("hi").AsString(); !ok || v != "hi" {
		t.Error("Str round trip failed")
	}
	if v, ok := Bytes([]byte{1, 2}).AsBytes(); !ok || len(v) != 2 {
		t.Error("Bytes round trip failed")
	}
	if _, ok := Bool(true).AsInt64(); ok {
		t.Error("cross-kind accessor should report !ok")
	}
}

func TestValueEqual(t *testing.T) {
	if !Int64(1).Equal(Int64(1)) || Int64(1).Equal(Int64(2)) {
		t.Error("Int64 equality broken")
	}
	if Int64(1).Equal(Float64(1)) {
		t.Error("cross-kind values should not be equal")
	}
	if !Bytes([]byte{1, 2}).Equal(Bytes([]byte{1, 2})) || Bytes([]byte{1}).Equal(Bytes([]byte{2})) {
		t.Error("Bytes equality broken")
	}
}

func TestBodyKinds(t *testing.T) {
	bodies := []Body{
		TextBody("x"), BytesBody{1}, MapBody{"k": Int64(1)},
		StreamBody{Str("a")}, ObjectBody{TypeName: "T", Data: []byte{1}},
	}
	kinds := []BodyKind{BodyText, BodyBytes, BodyMap, BodyStream, BodyObject}
	for i, b := range bodies {
		if b.Kind() != kinds[i] {
			t.Errorf("body %d: kind %v, want %v", i, b.Kind(), kinds[i])
		}
		if !b.Equal(b.Clone()) {
			t.Errorf("body %d: clone not equal", i)
		}
	}
}

func TestParseBodyKind(t *testing.T) {
	for _, name := range []string{"text", "bytes", "map", "stream", "object"} {
		k, err := ParseBodyKind(name)
		if err != nil {
			t.Fatalf("ParseBodyKind(%q): %v", name, err)
		}
		if k.String() != name {
			t.Errorf("ParseBodyKind(%q).String() = %q", name, k.String())
		}
	}
	if _, err := ParseBodyKind("json"); err == nil {
		t.Error("unknown body kind should fail to parse")
	}
}

func TestBodyCloneIndependence(t *testing.T) {
	orig := BytesBody{1, 2, 3}
	clone, ok := orig.Clone().(BytesBody)
	if !ok {
		t.Fatal("clone changed type")
	}
	clone[0] = 9
	if orig[0] != 1 {
		t.Error("mutating clone affected original")
	}

	mb := MapBody{"k": Bytes([]byte{1})}
	mc, ok := mb.Clone().(MapBody)
	if !ok {
		t.Fatal("map clone changed type")
	}
	if bs, _ := mc["k"].AsBytes(); len(bs) > 0 {
		bs[0] = 9
	}
	if bs, _ := mb["k"].AsBytes(); bs[0] != 1 {
		t.Error("mutating map clone affected original")
	}
}

func TestBodySize(t *testing.T) {
	cases := []struct {
		body Body
		want int
	}{
		{TextBody("abcd"), 4},
		{BytesBody(make([]byte, 10)), 10},
		{MapBody{"ab": Int64(1)}, 10},
		{StreamBody{Bool(true), Float64(0)}, 9},
		{ObjectBody{TypeName: "T", Data: []byte{1, 2}}, 3},
	}
	for i, c := range cases {
		if got := c.body.Size(); got != c.want {
			t.Errorf("case %d: size %d, want %d", i, got, c.want)
		}
	}
}

func TestMessageExpired(t *testing.T) {
	now := time.Now()
	m := &Message{}
	if m.Expired(now) {
		t.Error("zero expiration should never expire")
	}
	m.Expiration = now.Add(time.Second)
	if m.Expired(now) {
		t.Error("message should not be expired before its expiration")
	}
	if !m.Expired(now.Add(time.Second)) {
		t.Error("message should be expired at its expiration")
	}
}

func TestMessageProperties(t *testing.T) {
	m := &Message{}
	m.SetProperty("producer", Str("p1"))
	m.SetProperty("seq", Int64(7))
	if m.StringProperty("producer") != "p1" {
		t.Error("string property lookup failed")
	}
	if m.Int64Property("seq") != 7 {
		t.Error("int property lookup failed")
	}
	if m.StringProperty("missing") != "" || m.Int64Property("missing") != 0 {
		t.Error("missing property should yield zero values")
	}
	if m.StringProperty("seq") != "" {
		t.Error("kind-mismatched property should yield zero value")
	}
}

func TestMessageCloneIndependence(t *testing.T) {
	m := NewBytesMessage([]byte{1, 2, 3})
	m.SetProperty("k", Bytes([]byte{5}))
	c := m.Clone()
	if !m.Equal(c) {
		t.Fatal("clone should equal original")
	}
	cb, ok := c.Body.(BytesBody)
	if !ok {
		t.Fatal("clone body type changed")
	}
	cb[0] = 9
	c.SetProperty("k", Bytes([]byte{6}))
	if b, ok := m.Body.(BytesBody); !ok || b[0] != 1 {
		t.Error("mutating clone body affected original")
	}
	if v, _ := m.Properties["k"].AsBytes(); v[0] != 5 {
		t.Error("mutating clone properties affected original")
	}
}

func TestMessageEqualDifferences(t *testing.T) {
	base := func() *Message {
		return &Message{
			ID: "id1", Destination: Queue("q"), Mode: Persistent, Priority: 4,
			Timestamp: time.Unix(100, 0), Body: TextBody("x"),
		}
	}
	mutations := []func(*Message){
		func(m *Message) { m.ID = "id2" },
		func(m *Message) { m.Destination = Topic("q") },
		func(m *Message) { m.Mode = NonPersistent },
		func(m *Message) { m.Priority = 5 },
		func(m *Message) { m.Timestamp = time.Unix(101, 0) },
		func(m *Message) { m.Expiration = time.Unix(200, 0) },
		func(m *Message) { m.CorrelationID = "c" },
		func(m *Message) { m.ReplyTo = Queue("replies") },
		func(m *Message) { m.Type = "t" },
		func(m *Message) { m.Redelivered = true },
		func(m *Message) { m.SetProperty("k", Int64(1)) },
		func(m *Message) { m.Body = TextBody("y") },
		func(m *Message) { m.Body = nil },
	}
	for i, mutate := range mutations {
		a, b := base(), base()
		mutate(b)
		if a.Equal(b) {
			t.Errorf("mutation %d: messages should differ", i)
		}
	}
	if !base().Equal(base()) {
		t.Error("identical messages should be equal")
	}
}
