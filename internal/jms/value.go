package jms

import (
	"fmt"
	"strconv"
)

// ValueKind discriminates the scalar types carried by map and stream
// message bodies (the subset of JMS property/body types the harness
// exercises).
type ValueKind uint8

// Value kinds.
const (
	KindBool ValueKind = iota + 1
	KindInt64
	KindFloat64
	KindString
	KindBytes
)

// String returns the kind name.
func (k ValueKind) String() string {
	switch k {
	case KindBool:
		return "bool"
	case KindInt64:
		return "int64"
	case KindFloat64:
		return "float64"
	case KindString:
		return "string"
	case KindBytes:
		return "bytes"
	default:
		return fmt.Sprintf("ValueKind(%d)", uint8(k))
	}
}

// Value is a tagged scalar used by MapBody and StreamBody. The zero Value
// is invalid; construct with the Bool/Int64/Float64/Str/Bytes helpers.
type Value struct {
	kind ValueKind
	b    bool
	i    int64
	f    float64
	s    string
	bs   []byte
}

// Bool returns a boolean Value.
func Bool(v bool) Value { return Value{kind: KindBool, b: v} }

// Int64 returns an integer Value.
func Int64(v int64) Value { return Value{kind: KindInt64, i: v} }

// Float64 returns a floating-point Value.
func Float64(v float64) Value { return Value{kind: KindFloat64, f: v} }

// Str returns a string Value.
func Str(v string) Value { return Value{kind: KindString, s: v} }

// Bytes returns a byte-slice Value. The slice is not copied.
func Bytes(v []byte) Value { return Value{kind: KindBytes, bs: v} }

// Kind returns the value's kind, or 0 for the invalid zero Value.
func (v Value) Kind() ValueKind { return v.kind }

// AsBool returns the boolean payload; ok is false for other kinds.
func (v Value) AsBool() (value, ok bool) { return v.b, v.kind == KindBool }

// AsInt64 returns the integer payload; ok is false for other kinds.
func (v Value) AsInt64() (int64, bool) { return v.i, v.kind == KindInt64 }

// AsFloat64 returns the float payload; ok is false for other kinds.
func (v Value) AsFloat64() (float64, bool) { return v.f, v.kind == KindFloat64 }

// AsString returns the string payload; ok is false for other kinds.
func (v Value) AsString() (string, bool) { return v.s, v.kind == KindString }

// AsBytes returns the bytes payload; ok is false for other kinds.
func (v Value) AsBytes() ([]byte, bool) { return v.bs, v.kind == KindBytes }

// Size returns the approximate payload size in bytes, used for
// byte-throughput accounting.
func (v Value) Size() int {
	switch v.kind {
	case KindBool:
		return 1
	case KindInt64, KindFloat64:
		return 8
	case KindString:
		return len(v.s)
	case KindBytes:
		return len(v.bs)
	default:
		return 0
	}
}

// Equal reports deep equality of two values.
func (v Value) Equal(o Value) bool {
	if v.kind != o.kind {
		return false
	}
	switch v.kind {
	case KindBool:
		return v.b == o.b
	case KindInt64:
		return v.i == o.i
	case KindFloat64:
		return v.f == o.f
	case KindString:
		return v.s == o.s
	case KindBytes:
		if len(v.bs) != len(o.bs) {
			return false
		}
		for i := range v.bs {
			if v.bs[i] != o.bs[i] {
				return false
			}
		}
		return true
	default:
		return true
	}
}

// String renders the value for diagnostics.
func (v Value) String() string {
	switch v.kind {
	case KindBool:
		return strconv.FormatBool(v.b)
	case KindInt64:
		return strconv.FormatInt(v.i, 10)
	case KindFloat64:
		return strconv.FormatFloat(v.f, 'g', -1, 64)
	case KindString:
		return strconv.Quote(v.s)
	case KindBytes:
		return fmt.Sprintf("bytes[%d]", len(v.bs))
	default:
		return "<invalid>"
	}
}
