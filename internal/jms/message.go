package jms

import (
	"fmt"
	"sort"
	"time"
)

// Message is a JMS message: a header of delivery metadata, a set of
// application properties, and a typed body. Producers construct messages
// with a body and properties; the provider fills in ID, Destination,
// Mode, Priority, Timestamp and Expiration at send time.
type Message struct {
	// ID is the provider-assigned unique message identifier (JMSMessageID).
	ID string
	// Destination is the destination the message was sent to
	// (JMSDestination), set by the provider on send.
	Destination Destination
	// Mode is the delivery mode the message was sent with
	// (JMSDeliveryMode).
	Mode DeliveryMode
	// Priority is the 0–9 message priority (JMSPriority).
	Priority Priority
	// Timestamp is the provider-assigned send time (JMSTimestamp).
	Timestamp time.Time
	// Expiration is the time at which the message expires: Timestamp
	// plus the send's time-to-live. The zero time means the message
	// never expires (a TTL of 0 in JMS terms).
	Expiration time.Time
	// CorrelationID links a message to another (JMSCorrelationID).
	CorrelationID string
	// ReplyTo names the destination a reply should be sent to
	// (JMSReplyTo), typically a temporary queue.
	ReplyTo Destination
	// Type is an application message-type tag (JMSType).
	Type string
	// Redelivered is set by the provider when the message may have been
	// delivered before (JMSRedelivered), e.g. after Recover or rollback.
	Redelivered bool
	// Properties are application-set header properties. The harness uses
	// them to stamp each message with its logical producer and sequence
	// number so traces can be analysed per the formal model.
	Properties map[string]Value
	// Body is the payload; nil is allowed (a JMS Message with no body).
	Body Body
}

// NewTextMessage returns a message with a text body.
func NewTextMessage(text string) *Message {
	return &Message{Body: TextBody(text), Properties: map[string]Value{}}
}

// NewBytesMessage returns a message with a bytes body. The slice is not
// copied.
func NewBytesMessage(data []byte) *Message {
	return &Message{Body: BytesBody(data), Properties: map[string]Value{}}
}

// SetProperty sets an application property, allocating the map if needed.
func (m *Message) SetProperty(key string, v Value) {
	if m.Properties == nil {
		m.Properties = map[string]Value{}
	}
	m.Properties[key] = v
}

// Property returns the named application property.
func (m *Message) Property(key string) (Value, bool) {
	v, ok := m.Properties[key]
	return v, ok
}

// StringProperty returns the named property's string payload, or "" if
// absent or of another kind.
func (m *Message) StringProperty(key string) string {
	if v, ok := m.Properties[key]; ok {
		if s, ok := v.AsString(); ok {
			return s
		}
	}
	return ""
}

// Int64Property returns the named property's integer payload, or 0.
func (m *Message) Int64Property(key string) int64 {
	if v, ok := m.Properties[key]; ok {
		if i, ok := v.AsInt64(); ok {
			return i
		}
	}
	return 0
}

// BodySize returns the body payload size in bytes (0 for a nil body).
func (m *Message) BodySize() int {
	if m.Body == nil {
		return 0
	}
	return m.Body.Size()
}

// Expired reports whether the message has expired as of now. A zero
// Expiration never expires.
func (m *Message) Expired(now time.Time) bool {
	return !m.Expiration.IsZero() && !now.Before(m.Expiration)
}

// Clone returns a deep copy of the message. Providers clone before
// delivering to each subscriber so consumers cannot alias one another's
// payloads.
func (m *Message) Clone() *Message {
	c := *m
	if m.Properties != nil {
		c.Properties = make(map[string]Value, len(m.Properties))
		for k, v := range m.Properties {
			if bs, ok := v.AsBytes(); ok {
				nb := make([]byte, len(bs))
				copy(nb, bs)
				v = Bytes(nb)
			}
			c.Properties[k] = v
		}
	}
	if m.Body != nil {
		c.Body = m.Body.Clone()
	}
	return &c
}

// Equal reports whether two messages have identical headers, properties
// and bodies. Timestamps are compared at nanosecond precision in UTC.
func (m *Message) Equal(o *Message) bool {
	if m == nil || o == nil {
		return m == o
	}
	if m.ID != o.ID || !DestinationEqual(m.Destination, o.Destination) ||
		m.Mode != o.Mode || m.Priority != o.Priority ||
		!m.Timestamp.Equal(o.Timestamp) || !m.Expiration.Equal(o.Expiration) ||
		m.CorrelationID != o.CorrelationID || !DestinationEqual(m.ReplyTo, o.ReplyTo) ||
		m.Type != o.Type || m.Redelivered != o.Redelivered {
		return false
	}
	if len(m.Properties) != len(o.Properties) {
		return false
	}
	for k, v := range m.Properties {
		ov, ok := o.Properties[k]
		if !ok || !v.Equal(ov) {
			return false
		}
	}
	if m.Body == nil || o.Body == nil {
		return m.Body == nil && o.Body == nil
	}
	return m.Body.Equal(o.Body)
}

// String renders a short diagnostic description.
func (m *Message) String() string {
	dest := "<none>"
	if m.Destination != nil {
		dest = m.Destination.String()
	}
	body := "nil"
	if m.Body != nil {
		body = fmt.Sprintf("%s[%d]", m.Body.Kind(), m.Body.Size())
	}
	return fmt.Sprintf("msg{id=%s dest=%s mode=%s pri=%d body=%s}", m.ID, dest, m.Mode, m.Priority, body)
}

// sortedPropertyKeys returns property keys in sorted order for
// deterministic encoding.
func (m *Message) sortedPropertyKeys() []string {
	keys := make([]string, 0, len(m.Properties))
	for k := range m.Properties {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
