package jms

import (
	"fmt"
	"sort"
)

// BodyKind identifies one of the five JMS message body types.
type BodyKind uint8

// Body kinds, covering the five JMS message types the harness
// configuration can select ("StreamMessage, MapMessage, TextMessage,
// ObjectMessage and BytesMessage").
const (
	BodyText BodyKind = iota + 1
	BodyBytes
	BodyMap
	BodyStream
	BodyObject
)

// String returns the body kind name.
func (k BodyKind) String() string {
	switch k {
	case BodyText:
		return "text"
	case BodyBytes:
		return "bytes"
	case BodyMap:
		return "map"
	case BodyStream:
		return "stream"
	case BodyObject:
		return "object"
	default:
		return fmt.Sprintf("BodyKind(%d)", uint8(k))
	}
}

// ParseBodyKind parses a body kind name as used in test configurations.
func ParseBodyKind(s string) (BodyKind, error) {
	switch s {
	case "text":
		return BodyText, nil
	case "bytes":
		return BodyBytes, nil
	case "map":
		return BodyMap, nil
	case "stream":
		return BodyStream, nil
	case "object":
		return BodyObject, nil
	default:
		return 0, fmt.Errorf("%w: unknown body kind %q", ErrInvalidArgument, s)
	}
}

// Body is a message payload. Concrete types: TextBody, BytesBody,
// MapBody, StreamBody, ObjectBody.
type Body interface {
	// Kind identifies the body type.
	Kind() BodyKind
	// Size returns the payload size in bytes, used for byte-throughput
	// accounting.
	Size() int
	// Equal reports deep equality against another body.
	Equal(Body) bool
	// Clone returns a deep copy, so providers can hand each subscriber
	// an independent message.
	Clone() Body
}

// TextBody is a JMS TextMessage payload.
type TextBody string

var _ Body = TextBody("")

// Kind returns BodyText.
func (TextBody) Kind() BodyKind { return BodyText }

// Size returns the text length in bytes.
func (b TextBody) Size() int { return len(b) }

// Equal reports equality with another body.
func (b TextBody) Equal(o Body) bool {
	ob, ok := o.(TextBody)
	return ok && b == ob
}

// Clone returns the body (strings are immutable).
func (b TextBody) Clone() Body { return b }

// BytesBody is a JMS BytesMessage payload.
type BytesBody []byte

var _ Body = BytesBody(nil)

// Kind returns BodyBytes.
func (BytesBody) Kind() BodyKind { return BodyBytes }

// Size returns the payload length.
func (b BytesBody) Size() int { return len(b) }

// Equal reports equality with another body.
func (b BytesBody) Equal(o Body) bool {
	ob, ok := o.(BytesBody)
	if !ok || len(b) != len(ob) {
		return false
	}
	for i := range b {
		if b[i] != ob[i] {
			return false
		}
	}
	return true
}

// Clone returns a deep copy.
func (b BytesBody) Clone() Body {
	c := make(BytesBody, len(b))
	copy(c, b)
	return c
}

// MapBody is a JMS MapMessage payload: named typed values.
type MapBody map[string]Value

var _ Body = MapBody(nil)

// Kind returns BodyMap.
func (MapBody) Kind() BodyKind { return BodyMap }

// Size returns the total size of keys and values.
func (b MapBody) Size() int {
	n := 0
	for k, v := range b {
		n += len(k) + v.Size()
	}
	return n
}

// Equal reports equality with another body.
func (b MapBody) Equal(o Body) bool {
	ob, ok := o.(MapBody)
	if !ok || len(b) != len(ob) {
		return false
	}
	for k, v := range b {
		ov, ok := ob[k]
		if !ok || !v.Equal(ov) {
			return false
		}
	}
	return true
}

// Clone returns a deep copy.
func (b MapBody) Clone() Body {
	c := make(MapBody, len(b))
	for k, v := range b {
		if bs, ok := v.AsBytes(); ok {
			nb := make([]byte, len(bs))
			copy(nb, bs)
			v = Bytes(nb)
		}
		c[k] = v
	}
	return c
}

// SortedKeys returns the map's keys in sorted order, for deterministic
// encoding.
func (b MapBody) SortedKeys() []string {
	keys := make([]string, 0, len(b))
	for k := range b {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// StreamBody is a JMS StreamMessage payload: an ordered sequence of typed
// values.
type StreamBody []Value

var _ Body = StreamBody(nil)

// Kind returns BodyStream.
func (StreamBody) Kind() BodyKind { return BodyStream }

// Size returns the total size of the values.
func (b StreamBody) Size() int {
	n := 0
	for _, v := range b {
		n += v.Size()
	}
	return n
}

// Equal reports equality with another body.
func (b StreamBody) Equal(o Body) bool {
	ob, ok := o.(StreamBody)
	if !ok || len(b) != len(ob) {
		return false
	}
	for i := range b {
		if !b[i].Equal(ob[i]) {
			return false
		}
	}
	return true
}

// Clone returns a deep copy.
func (b StreamBody) Clone() Body {
	c := make(StreamBody, len(b))
	for i, v := range b {
		if bs, ok := v.AsBytes(); ok {
			nb := make([]byte, len(bs))
			copy(nb, bs)
			v = Bytes(nb)
		}
		c[i] = v
	}
	return c
}

// ObjectBody is a JMS ObjectMessage payload: an opaque serialised object,
// carried as a type name plus encoded bytes (the Go analogue of a Java
// serialised object).
type ObjectBody struct {
	// TypeName records the application-level type of the object.
	TypeName string
	// Data is the serialised object.
	Data []byte
}

var _ Body = ObjectBody{}

// Kind returns BodyObject.
func (ObjectBody) Kind() BodyKind { return BodyObject }

// Size returns the serialised size.
func (b ObjectBody) Size() int { return len(b.TypeName) + len(b.Data) }

// Equal reports equality with another body.
func (b ObjectBody) Equal(o Body) bool {
	ob, ok := o.(ObjectBody)
	if !ok || b.TypeName != ob.TypeName || len(b.Data) != len(ob.Data) {
		return false
	}
	for i := range b.Data {
		if b.Data[i] != ob.Data[i] {
			return false
		}
	}
	return true
}

// Clone returns a deep copy.
func (b ObjectBody) Clone() Body {
	d := make([]byte, len(b.Data))
	copy(d, b.Data)
	return ObjectBody{TypeName: b.TypeName, Data: d}
}
