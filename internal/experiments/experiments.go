// Package experiments regenerates every figure and reported result of
// the paper's evaluation. Each experiment builds a workload
// configuration, runs it through the harness against a profiled
// provider, analyses the trace, and returns the same rows/series the
// paper reports:
//
//   - Figure 1: the ordering-violation scenario (detected, not plotted);
//   - Figure 2: Provider I throughput vs demand (flat saturation);
//   - Figure 3: Provider II throughput vs demand (subscriber droop);
//   - §3.2: the full performance-measure block;
//   - footnote 9: the three-provider ×10 comparison;
//   - §4.1: per-event DB ingest vs streaming aggregation.
//
// Durations are scaled by a single Scale knob so the same experiments
// serve both quick benchmarks and longer, lower-variance runs.
package experiments

import (
	"fmt"
	"strings"
	"time"

	"jmsharness/internal/analysis"
	"jmsharness/internal/broker"
	"jmsharness/internal/faults"
	"jmsharness/internal/harness"
	"jmsharness/internal/jms"
	"jmsharness/internal/model"
	"jmsharness/internal/qos"
	"jmsharness/internal/trace"
)

// SweepOptions configures a throughput-vs-demand sweep.
type SweepOptions struct {
	// Profile is the provider profile under test.
	Profile broker.Profile
	// DemandsBps are the x-axis points in body bytes per second, as in
	// the paper's Figures 2–3 ("Demand (b/s)" from 0 to 500,000).
	DemandsBps []float64
	// MsgSize is the message body size in bytes.
	MsgSize int
	// Run is the measured run period per point; Warmup and Warmdown
	// bracket it.
	Warmup, Run, Warmdown time.Duration
}

// DefaultDemands is the paper's x-axis: 50,000 to 500,000 b/s.
func DefaultDemands() []float64 {
	out := make([]float64, 0, 10)
	for d := 50_000.0; d <= 500_000; d += 50_000 {
		out = append(out, d)
	}
	return out
}

// Figure2Options returns the sweep reproducing Figure 2 (Provider I,
// 1 KiB messages: at 500,000 b/s demand the offered rate is ≈488
// msgs/s, far beyond the provider's ≈45 msgs/s capacity).
func Figure2Options(scale float64) SweepOptions {
	return SweepOptions{
		Profile:    broker.ProviderI(),
		DemandsBps: DefaultDemands(),
		MsgSize:    1024,
		Warmup:     scaleDur(200*time.Millisecond, scale),
		Run:        scaleDur(time.Second, scale),
		Warmdown:   scaleDur(300*time.Millisecond, scale),
	}
}

// Figure3Options returns the sweep reproducing Figure 3 (Provider II,
// 2,500-byte messages so the 0–500,000 b/s demand axis spans 0–200
// msgs/s as in the paper's y-axis).
func Figure3Options(scale float64) SweepOptions {
	return SweepOptions{
		Profile:    broker.ProviderII(),
		DemandsBps: DefaultDemands(),
		MsgSize:    2500,
		Warmup:     scaleDur(200*time.Millisecond, scale),
		Run:        scaleDur(1500*time.Millisecond, scale),
		Warmdown:   scaleDur(300*time.Millisecond, scale),
	}
}

func scaleDur(d time.Duration, scale float64) time.Duration {
	if scale <= 0 {
		scale = 1
	}
	return time.Duration(float64(d) * scale)
}

// ThroughputPoint is one point of a Figure 2/3 series.
type ThroughputPoint struct {
	// DemandBps is the offered load in body bytes/second.
	DemandBps float64
	// OfferedMsgs is the offered load in messages/second.
	OfferedMsgs float64
	// PublisherMsgs and SubscriberMsgs are the measured throughputs in
	// messages/second ("Publisher Msgs" / "Subscriber Msgs").
	PublisherMsgs  float64
	SubscriberMsgs float64
	// PublisherBps and SubscriberBps are the byte-rate equivalents.
	PublisherBps  float64
	SubscriberBps float64
}

// ThroughputSweep runs one pub/sub throughput-vs-demand sweep: a single
// publisher paced at the demand rate, a single subscriber, fresh broker
// per point (as the paper reset the provider between tests).
func ThroughputSweep(opts SweepOptions) ([]ThroughputPoint, error) {
	points := make([]ThroughputPoint, 0, len(opts.DemandsBps))
	for i, demand := range opts.DemandsBps {
		rate := demand / float64(opts.MsgSize)
		if rate <= 0 {
			return nil, fmt.Errorf("experiments: demand %v with size %d yields no rate", demand, opts.MsgSize)
		}
		b, err := broker.New(broker.Options{
			Name:    fmt.Sprintf("sweep-%d", i),
			Profile: opts.Profile,
			Seed:    uint64(i + 1),
		})
		if err != nil {
			return nil, err
		}
		cfg := harness.Config{
			Name:        fmt.Sprintf("%s-demand-%.0f", opts.Profile.Name, demand),
			Destination: jms.Topic("throughput"),
			Producers: []harness.ProducerConfig{{
				ID: "publisher", Rate: rate, BodySize: opts.MsgSize,
				Mode: jms.NonPersistent,
			}},
			Consumers: []harness.ConsumerConfig{{ID: "subscriber"}},
			Warmup:    opts.Warmup,
			Run:       opts.Run,
			Warmdown:  opts.Warmdown,
			Seed:      uint64(i + 1),
		}
		tr, err := harness.NewRunner(b, nil).Run(cfg)
		if err != nil {
			_ = b.Close()
			return nil, err
		}
		m, err := analysis.Analyze(tr, analysis.Options{})
		if err != nil {
			_ = b.Close()
			return nil, err
		}
		if err := b.Close(); err != nil {
			return nil, err
		}
		points = append(points, ThroughputPoint{
			DemandBps:      demand,
			OfferedMsgs:    rate,
			PublisherMsgs:  m.Producer.PerSecond,
			SubscriberMsgs: m.Consumer.PerSecond,
			PublisherBps:   m.Producer.BytesPerSecond,
			SubscriberBps:  m.Consumer.BytesPerSecond,
		})
	}
	return points, nil
}

// FormatThroughputTable renders a sweep as the rows behind a Figure 2/3
// plot.
func FormatThroughputTable(title string, points []ThroughputPoint) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	fmt.Fprintf(&b, "%12s %12s %14s %15s\n", "Demand(b/s)", "Offered/s", "PublisherMsgs", "SubscriberMsgs")
	for _, p := range points {
		fmt.Fprintf(&b, "%12.0f %12.1f %14.1f %15.1f\n",
			p.DemandBps, p.OfferedMsgs, p.PublisherMsgs, p.SubscriberMsgs)
	}
	return b.String()
}

// FormatThroughputCSV renders a sweep as CSV, one row per demand point,
// for plotting Figures 2–3 with external tools.
func FormatThroughputCSV(points []ThroughputPoint) string {
	var b strings.Builder
	b.WriteString("demand_bps,offered_msgs_per_s,publisher_msgs_per_s,subscriber_msgs_per_s\n")
	for _, p := range points {
		fmt.Fprintf(&b, "%.0f,%.2f,%.2f,%.2f\n",
			p.DemandBps, p.OfferedMsgs, p.PublisherMsgs, p.SubscriberMsgs)
	}
	return b.String()
}

// Figure1Result reports the ordering-violation demonstration.
type Figure1Result struct {
	// Violations is the number of ordering violations the checker found
	// (must be > 0: the scenario of Figure 1 exists and is detected).
	Violations int
	// Example is the first violation's description.
	Example string
}

// Figure1 reproduces the paper's Figure 1 scenario: a publisher and a
// subscriber where msg' overtakes msg in transit, and shows that
// Property 3 detects it. The reordering is injected with the faults
// wrapper around a correct provider.
func Figure1(scale float64) (*Figure1Result, error) {
	b, err := broker.New(broker.Options{Name: "fig1"})
	if err != nil {
		return nil, err
	}
	defer b.Close()
	cfg := harness.Config{
		Name:        "figure1",
		Destination: jms.Topic("fig1"),
		Producers:   []harness.ProducerConfig{{ID: "publisher", Rate: 300, BodySize: 64}},
		Consumers:   []harness.ConsumerConfig{{ID: "subscriber"}},
		Warmup:      scaleDur(20*time.Millisecond, scale),
		Run:         scaleDur(250*time.Millisecond, scale),
		Warmdown:    scaleDur(150*time.Millisecond, scale),
	}
	tr, err := harness.NewRunner(faults.NewReorderer(b, 7), nil).Run(cfg)
	if err != nil {
		return nil, err
	}
	report, err := model.Check(tr, model.DefaultConfig())
	if err != nil {
		return nil, err
	}
	res, _ := report.Result(model.PropMessageOrdering)
	out := &Figure1Result{Violations: len(res.Violations)}
	if len(res.Violations) > 0 {
		out.Example = res.Violations[0].String()
	}
	return out, nil
}

// MeasuresResult carries the §3.2 performance-measure block for a
// mixed workload, together with its conformance and QoS reports.
type MeasuresResult struct {
	Measures    *analysis.Measures
	Conformance *model.Report
	QoS         *qos.Report
}

// PerformanceMeasures runs the §3.2 measurement workload: two producers
// at different priorities and two consumers on one queue, reporting
// producer/consumer throughput, delay statistics and fairness.
func PerformanceMeasures(scale float64) (*MeasuresResult, error) {
	b, err := broker.New(broker.Options{Name: "measures", Profile: broker.ProviderB()})
	if err != nil {
		return nil, err
	}
	defer b.Close()
	cfg := harness.Config{
		Name:        "measures",
		Destination: jms.Queue("measured"),
		Producers: []harness.ProducerConfig{
			{ID: "p-high", Rate: 60, BodySize: 512, Priorities: []jms.Priority{8}},
			{ID: "p-low", Rate: 60, BodySize: 512, Priorities: []jms.Priority{1}},
		},
		Consumers: []harness.ConsumerConfig{{ID: "c1"}, {ID: "c2"}},
		Warmup:    scaleDur(200*time.Millisecond, scale),
		Run:       scaleDur(time.Second, scale),
		Warmdown:  scaleDur(300*time.Millisecond, scale),
	}
	tr, err := harness.NewRunner(b, nil).Run(cfg)
	if err != nil {
		return nil, err
	}
	m, err := analysis.Analyze(tr, analysis.Options{})
	if err != nil {
		return nil, err
	}
	report, err := model.Check(tr, model.DefaultConfig())
	if err != nil {
		return nil, err
	}
	return &MeasuresResult{
		Measures:    m,
		Conformance: report,
		QoS:         qosGate(MeasuresContract(), tr),
	}, nil
}

// ComparisonRow is one provider's result in the footnote-9 comparison.
type ComparisonRow struct {
	Provider       string
	PublisherMsgs  float64
	SubscriberMsgs float64
	MeanDelay      time.Duration
}

// ProviderComparison reproduces footnote 9: the same saturating workload
// against three providers whose throughputs differ by roughly a factor
// of 10 between the fastest and the slowest.
func ProviderComparison(scale float64) ([]ComparisonRow, error) {
	profiles := []broker.Profile{broker.ProviderA(), broker.ProviderB(), broker.ProviderC()}
	rows := make([]ComparisonRow, 0, len(profiles))
	for i, profile := range profiles {
		b, err := broker.New(broker.Options{Name: profile.Name, Profile: profile, Seed: uint64(i + 1)})
		if err != nil {
			return nil, err
		}
		cfg := harness.Config{
			Name:        "compare-" + profile.Name,
			Destination: jms.Topic("compare"),
			Producers: []harness.ProducerConfig{{
				ID: "publisher", Rate: 1000, BodySize: 512, Mode: jms.NonPersistent,
			}},
			Consumers: []harness.ConsumerConfig{{ID: "subscriber"}},
			Warmup:    scaleDur(200*time.Millisecond, scale),
			Run:       scaleDur(time.Second, scale),
			Warmdown:  scaleDur(300*time.Millisecond, scale),
			Seed:      uint64(i + 1),
		}
		tr, err := harness.NewRunner(b, nil).Run(cfg)
		if err != nil {
			_ = b.Close()
			return nil, err
		}
		m, err := analysis.Analyze(tr, analysis.Options{})
		if err != nil {
			_ = b.Close()
			return nil, err
		}
		if err := b.Close(); err != nil {
			return nil, err
		}
		rows = append(rows, ComparisonRow{
			Provider:       profile.Name,
			PublisherMsgs:  m.Producer.PerSecond,
			SubscriberMsgs: m.Consumer.PerSecond,
			MeanDelay:      m.Delay.Mean,
		})
	}
	return rows, nil
}

// FormatComparison renders the comparison table.
func FormatComparison(rows []ComparisonRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-12s %14s %15s %12s\n", "Provider", "PublisherMsgs", "SubscriberMsgs", "MeanDelay")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-12s %14.1f %15.1f %12s\n", r.Provider, r.PublisherMsgs, r.SubscriberMsgs, r.MeanDelay)
	}
	return b.String()
}

// SyntheticTrace builds a deterministic trace of roughly n events for
// the §4.1 ingest experiments: sends matched with deliveries across a
// handful of producers and consumers, with run-phase markers.
func SyntheticTrace(n int) *trace.Trace {
	epoch := time.Unix(5000, 0)
	var events []trace.Event
	seq := int64(0)
	add := func(ev trace.Event) {
		seq++
		ev.Node = "synthetic"
		ev.Seq = seq
		events = append(events, ev)
	}
	add(trace.Event{Type: trace.EventPhase, Detail: trace.PhaseRun, Time: epoch})
	msgs := n / 3
	for i := 0; i < msgs; i++ {
		producer := fmt.Sprintf("p%d", i%4)
		consumer := fmt.Sprintf("c%d", i%3)
		uid := trace.MessageUID(producer, int64(i))
		at := epoch.Add(time.Duration(i) * 100 * time.Microsecond)
		add(trace.Event{Type: trace.EventSendStart, Time: at, Producer: producer,
			MsgUID: uid, MsgSeq: int64(i), Dest: "queue:synth", BodyBytes: 256})
		add(trace.Event{Type: trace.EventSendEnd, Time: at.Add(50 * time.Microsecond),
			Producer: producer, MsgUID: uid, MsgSeq: int64(i), Dest: "queue:synth", BodyBytes: 256})
		add(trace.Event{Type: trace.EventDeliver, Time: at.Add(2 * time.Millisecond),
			Consumer: consumer, MsgUID: uid, Endpoint: "queue:synth", Dest: "queue:synth", BodyBytes: 256})
	}
	add(trace.Event{Type: trace.EventPhase, Detail: trace.PhaseWarmdown,
		Time: epoch.Add(time.Duration(msgs) * 100 * time.Microsecond).Add(time.Second)})
	return &trace.Trace{Events: events}
}
