package experiments

import (
	"fmt"
	"strings"
	"time"

	"jmsharness/internal/broker"
	"jmsharness/internal/chaos"
	"jmsharness/internal/harness"
	"jmsharness/internal/jms"
	"jmsharness/internal/model"
	"jmsharness/internal/qos"
	"jmsharness/internal/trace"
	"jmsharness/internal/wire"
)

// ChaosRow is one fault profile's outcome: the conformance workload ran
// over the wire protocol through a chaos proxy applying that profile,
// with client-side reconnection on, and every safety property was
// checked on the resulting trace.
type ChaosRow struct {
	// Profile names the fault profile.
	Profile string `json:"profile"`
	// FaultEvents is the proxy's deterministic event log (fault
	// parameters only, so identical seeds reproduce identical logs).
	FaultEvents []string `json:"fault_events,omitempty"`
	// Reconnects counts successful client reconnections.
	Reconnects int64 `json:"reconnects"`
	// Sent and Delivered count committed sends and deliveries in the
	// trace.
	Sent      int64 `json:"sent"`
	Delivered int64 `json:"delivered"`
	// Violations counts safety-property violations (must be 0: the
	// provider is correct; the network is what misbehaves).
	Violations int `json:"violations"`
	// Passed reports full conformance.
	Passed bool `json:"passed"`
	// QoS is the verdict on ChaosContract(profile): a recovery floor for
	// every profile, delay and rejection bounds for the non-partitioning
	// ones.
	QoS *qos.Report `json:"qos,omitempty"`
}

// chaosProfile is one named network-fault configuration.
type chaosProfile struct {
	name      string
	latency   time.Duration
	jitter    time.Duration
	bandwidth int
	schedule  func(run time.Duration) []chaos.Fault
}

// ChaosMatrix runs the conformance workload through a fault-injecting
// TCP proxy under a range of network profiles — latency, a bandwidth
// cap, a mid-run partition that heals, forced connection resets, and
// their combination. The clients reconnect automatically, sends are
// deduplicated by token, and consumption is client-acknowledged over
// persistent delivery, so every safety property must still hold: a
// chaotic network may delay or redeliver (flagged), but never lose,
// duplicate or reorder committed messages.
func ChaosMatrix(scale float64) ([]ChaosRow, error) {
	run := scaleDur(400*time.Millisecond, scale)
	profiles := []chaosProfile{
		{name: "clean"},
		{name: "latency", latency: 3 * time.Millisecond, jitter: 2 * time.Millisecond},
		{name: "bandwidth", bandwidth: 512 << 10},
		{name: "partition-heal", schedule: func(run time.Duration) []chaos.Fault {
			return []chaos.Fault{
				{At: run / 3, Kind: chaos.FaultPartition, Dir: chaos.Both, Duration: run / 4},
			}
		}},
		{name: "reset", schedule: func(run time.Duration) []chaos.Fault {
			return []chaos.Fault{
				{At: run / 2, Kind: chaos.FaultReset},
			}
		}},
		{name: "partition+reset", schedule: func(run time.Duration) []chaos.Fault {
			return []chaos.Fault{
				{At: run / 4, Kind: chaos.FaultReset},
				{At: run / 2, Kind: chaos.FaultPartition, Dir: chaos.Both, Duration: run / 5},
			}
		}},
	}
	rows := make([]ChaosRow, 0, len(profiles))
	for i, p := range profiles {
		row, err := runChaosProfile(p, run, uint64(i+1))
		if err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}
	return rows, nil
}

func runChaosProfile(p chaosProfile, run time.Duration, seed uint64) (ChaosRow, error) {
	b, err := broker.New(broker.Options{Name: "chaos-" + p.name, Seed: seed})
	if err != nil {
		return ChaosRow{}, err
	}
	defer b.Close()
	srv, err := wire.NewServer(b, "127.0.0.1:0")
	if err != nil {
		return ChaosRow{}, err
	}
	srv.Start()
	defer srv.Close()
	opts := chaos.Options{
		Target:       srv.Addr(),
		Latency:      p.latency,
		Jitter:       p.jitter,
		BandwidthBps: p.bandwidth,
		Seed:         seed,
	}
	if p.schedule != nil {
		// The schedule clock starts at proxy creation; the brief warmup
		// offset is absorbed by expressing fault times as run fractions.
		opts.Schedule = p.schedule(run)
	}
	proxy, err := chaos.New(opts)
	if err != nil {
		return ChaosRow{}, err
	}
	defer proxy.Close()

	// Reconnect + per-send dedup tokens + persistent delivery +
	// client acknowledgement: the configuration under which Delivery
	// Integrity is supposed to survive connection loss.
	factory := wire.NewFactory(proxy.Addr()).
		WithCallTimeout(5 * time.Second).
		WithReconnect(wire.ReconnectPolicy{Enabled: true, Seed: seed})
	cfg := harness.Config{
		Name:        "chaos-" + p.name,
		Destination: jms.Queue("chaos-" + p.name),
		Producers:   []harness.ProducerConfig{{ID: "p1", Rate: 300, BodySize: 64}},
		Consumers:   []harness.ConsumerConfig{{ID: "c1", AckMode: jms.AckClient}},
		Warmup:      20 * time.Millisecond,
		Run:         run,
		Warmdown:    scaleDur(400*time.Millisecond, 1),
		Seed:        seed,
	}
	tr, err := harness.NewRunner(factory, nil).Run(cfg)
	if err != nil {
		return ChaosRow{}, err
	}
	report, err := model.Check(tr, model.DefaultConfig())
	if err != nil {
		return ChaosRow{}, err
	}
	row := ChaosRow{
		Profile:     p.name,
		FaultEvents: proxy.Events(),
		Reconnects:  factory.Reconnects(),
		Violations:  len(report.Violations()),
		Passed:      report.OK(),
		QoS:         qosGate(ChaosContract(p.name), tr),
	}
	for _, ev := range tr.Events {
		switch ev.Type {
		case trace.EventSendEnd:
			row.Sent++
		case trace.EventDeliver:
			row.Delivered++
		}
	}
	return row, nil
}

// FormatChaos renders the chaos matrix.
func FormatChaos(rows []ChaosRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-16s %-7s %10s %10s %10s %10s %6s\n",
		"Profile", "Faults", "Reconnect", "Sent", "Delivered", "Violations", "Pass")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-16s %-7d %10d %10d %10d %10d %6t\n",
			r.Profile, len(r.FaultEvents), r.Reconnects, r.Sent, r.Delivered, r.Violations, r.Passed)
	}
	return b.String()
}
