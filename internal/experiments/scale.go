package experiments

import (
	"fmt"
	"strings"
	"time"

	"jmsharness/internal/analysis"
	"jmsharness/internal/broker"
	"jmsharness/internal/cluster"
	"jmsharness/internal/harness"
	"jmsharness/internal/jms"
	"jmsharness/internal/model"
	"jmsharness/internal/qos"
)

// ScaleOptions configures the cluster scaling sweep: the same saturated
// multi-queue workload run against federations of growing shard counts.
//
// Each node gets a token-bucket service profile (PerNodeRate msgs/s on
// both the send and delivery paths), so a node's capacity is a
// wall-clock property, not a CPU-share property — aggregate throughput
// then scales with the shard count even on a single-core machine, which
// is also how the paper's providers behave (the bottleneck is the
// broker's service pipeline, not the test driver). Offered load is
// unthrottled in the sense that demand exceeds every configuration's
// aggregate capacity: producers push as fast as the brokers admit.
type ScaleOptions struct {
	// Shards are the cluster sizes to sweep (default 1..4).
	Shards []int
	// PerNodeRate is each node's send/deliver service rate in msgs/s.
	PerNodeRate float64
	// Queues is the number of distinct queues in the workload; they are
	// named scale.q-<i> so consistent hashing spreads them over every
	// shard count in the sweep.
	Queues int
	// RatePerQueue is the offered load per queue in msgs/s. The sweep
	// saturates when Queues*RatePerQueue comfortably exceeds
	// max(Shards)*PerNodeRate.
	RatePerQueue float64
	// MsgSize is the message body size in bytes.
	MsgSize int
	// Placement names the placement policy (cluster.PlacementByName).
	Placement string
	// Warmup, Run and Warmdown bracket each point's measured period.
	Warmup, Run, Warmdown time.Duration
}

// ScaleSweepOptions returns the stock sweep: 1–4 shards of 200 msg/s
// nodes under a 12-queue workload offering 3,000 msgs/s — saturating
// even the 4-shard configuration, so measured throughput is capacity.
func ScaleSweepOptions(scale float64) ScaleOptions {
	return ScaleOptions{
		Shards:       []int{1, 2, 3, 4},
		PerNodeRate:  200,
		Queues:       12,
		RatePerQueue: 250,
		MsgSize:      128,
		Placement:    "hash-ring",
		Warmup:       scaleDur(200*time.Millisecond, scale),
		Run:          scaleDur(time.Second, scale),
		Warmdown:     scaleDur(300*time.Millisecond, scale),
	}
}

// ScalePoint is one shard count's measured result.
type ScalePoint struct {
	// Nodes is the shard count.
	Nodes int `json:"nodes"`
	// OfferedMsgs is the total offered load in msgs/s.
	OfferedMsgs float64 `json:"offered_msgs_per_sec"`
	// CapacityMsgs is the configured aggregate capacity (Nodes ×
	// PerNodeRate), the ceiling the measurement should approach.
	CapacityMsgs float64 `json:"capacity_msgs_per_sec"`
	// ProducerMsgs and ConsumerMsgs are measured aggregate throughputs.
	ProducerMsgs float64 `json:"producer_msgs_per_sec"`
	ConsumerMsgs float64 `json:"consumer_msgs_per_sec"`
	// MeanDelay and P95Delay summarise end-to-end delay.
	MeanDelay time.Duration `json:"delay_mean_ns"`
	P95Delay  time.Duration `json:"delay_p95_ns"`
	// ConformanceOK reports whether Properties 1–5 held — scaling that
	// breaks the formal model is not scaling.
	ConformanceOK bool `json:"conformance_ok"`
	// QoS is the verdict on ScaleContract(CapacityMsgs): measured
	// consumption must reach a decent fraction of configured capacity.
	QoS *qos.Report `json:"qos,omitempty"`
	// RoutedPerNode is each node's routed-message count, showing how
	// the placement spread the queues.
	RoutedPerNode []int64 `json:"routed_per_node"`
}

// ScaleSweep measures aggregate throughput and delay against cluster
// sizes, one fresh federation per point.
func ScaleSweep(opts ScaleOptions) ([]ScalePoint, error) {
	if len(opts.Shards) == 0 {
		return nil, fmt.Errorf("experiments: scale sweep has no shard counts")
	}
	profile := broker.Profile{
		Name:         fmt.Sprintf("node-%.0fps", opts.PerNodeRate),
		SendRate:     opts.PerNodeRate,
		SendBurst:    opts.PerNodeRate / 10,
		DeliverRate:  opts.PerNodeRate,
		DeliverBurst: opts.PerNodeRate / 10,
		BaseLatency:  time.Millisecond,
	}
	points := make([]ScalePoint, 0, len(opts.Shards))
	for i, n := range opts.Shards {
		place, err := cluster.PlacementByName(opts.Placement, n)
		if err != nil {
			return nil, err
		}
		c, err := cluster.NewLocal(n, cluster.LocalOptions{
			NamePrefix: fmt.Sprintf("scale%d", n),
			Profile:    profile,
			Placement:  place,
			Seed:       uint64(i + 1),
		})
		if err != nil {
			return nil, err
		}
		cfg := harness.Config{
			Name:     fmt.Sprintf("scale-%d-shards", n),
			Warmup:   opts.Warmup,
			Run:      opts.Run,
			Warmdown: opts.Warmdown,
			Seed:     uint64(i + 1),
		}
		for q := 0; q < opts.Queues; q++ {
			dest := jms.Queue(fmt.Sprintf("scale.q-%d", q))
			cfg.Producers = append(cfg.Producers, harness.ProducerConfig{
				ID: fmt.Sprintf("p%d", q), Rate: opts.RatePerQueue,
				BodySize: opts.MsgSize, Mode: jms.NonPersistent, Destination: dest,
			})
			cfg.Consumers = append(cfg.Consumers, harness.ConsumerConfig{
				ID: fmt.Sprintf("c%d", q), Destination: dest,
			})
		}
		tr, err := harness.NewRunner(c, nil).Run(cfg)
		if err != nil {
			_ = c.Close()
			return nil, err
		}
		m, err := analysis.Analyze(tr, analysis.Options{})
		if err != nil {
			_ = c.Close()
			return nil, err
		}
		report, err := model.Check(tr, model.DefaultConfig())
		if err != nil {
			_ = c.Close()
			return nil, err
		}
		routed := make([]int64, 0, n)
		for _, ns := range c.Status().Nodes {
			routed = append(routed, ns.Routed)
		}
		if err := c.Close(); err != nil {
			return nil, err
		}
		points = append(points, ScalePoint{
			Nodes:         n,
			OfferedMsgs:   float64(opts.Queues) * opts.RatePerQueue,
			CapacityMsgs:  float64(n) * opts.PerNodeRate,
			ProducerMsgs:  m.Producer.PerSecond,
			ConsumerMsgs:  m.Consumer.PerSecond,
			MeanDelay:     m.Delay.Mean,
			P95Delay:      m.Delay.P95,
			ConformanceOK: report.OK(),
			QoS:           qosGate(ScaleContract(float64(n)*opts.PerNodeRate), tr),
			RoutedPerNode: routed,
		})
	}
	return points, nil
}

// FormatScaleTable renders the scaling sweep.
func FormatScaleTable(opts ScaleOptions, points []ScalePoint) string {
	var b strings.Builder
	fmt.Fprintf(&b, "placement=%s per-node=%.0f msg/s queues=%d offered=%.0f msg/s run=%v\n",
		opts.Placement, opts.PerNodeRate, opts.Queues,
		float64(opts.Queues)*opts.RatePerQueue, opts.Run)
	fmt.Fprintf(&b, "%6s %12s %12s %12s %12s %12s %9s\n",
		"Shards", "Capacity/s", "Producer/s", "Consumer/s", "MeanDelay", "P95Delay", "Conforms")
	for _, p := range points {
		fmt.Fprintf(&b, "%6d %12.0f %12.1f %12.1f %12s %12s %9t\n",
			p.Nodes, p.CapacityMsgs, p.ProducerMsgs, p.ConsumerMsgs,
			p.MeanDelay.Round(time.Microsecond), p.P95Delay.Round(time.Microsecond), p.ConformanceOK)
	}
	return b.String()
}
