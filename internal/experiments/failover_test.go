package experiments

import "testing"

// TestFailoverConformance is the JMSFAILOVER smoke stage: a short
// replicated run with a scripted permanent primary kill must promote at
// least once, recover deliveries on the victim's queues, and pass every
// safety property.
func TestFailoverConformance(t *testing.T) {
	res, err := Failover(0.5)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", FormatFailover(res))
	if !res.Passed || res.Violations != 0 {
		t.Errorf("failover run violated safety: passed=%t violations=%d", res.Passed, res.Violations)
	}
	if res.Promotions < 1 {
		t.Errorf("no promotion observed; replica events: %v", res.ReplicaEvents)
	}
	if len(res.VictimQueues) == 0 {
		t.Error("victim owned no queues; the kill exercised nothing")
	}
	if res.MTTR <= 0 {
		t.Error("no post-kill delivery on a victim queue: failover did not recover consumers")
	}
	if res.UnavailableWindow <= 0 {
		t.Error("no post-kill successful send on a victim queue: failover did not recover producers")
	}
}
