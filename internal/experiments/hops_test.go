package experiments

import (
	"strings"
	"testing"
	"time"

	"jmsharness/internal/obs"
)

func TestAggregateSpans(t *testing.T) {
	t0 := time.Unix(100, 0)
	ms := func(d int) time.Time { return t0.Add(time.Duration(d) * time.Millisecond) }
	spans := []obs.Span{
		// Trace A: a full wire path — RPC, server recv, enqueue lifecycle.
		{TraceID: "A", Hop: 0, Kind: obs.KindSendRPC, SentAt: t0, EndedAt: ms(2)},
		{TraceID: "A", Hop: 1, Kind: obs.KindServerRecv, SentAt: t0, EndedAt: ms(1)},
		{TraceID: "A", Hop: 1, Kind: obs.KindEnqueue, SentAt: t0, EnqueuedAt: ms(1),
			DeliveredAt: ms(5), EndedAt: ms(6), WALWaitNs: int64(500 * time.Microsecond)},
		// Trace B: a cluster forward plus its enqueue.
		{TraceID: "B", Hop: 1, Kind: obs.KindForward, SentAt: t0, EndedAt: ms(3)},
		{TraceID: "B", Hop: 1, Kind: obs.KindEnqueue, SentAt: t0, EnqueuedAt: ms(3),
			DeliveredAt: ms(4), EndedAt: ms(5)},
		// Trace C: single-hop local enqueue, never delivered (no samples
		// beyond enqueue fields that are set).
		{TraceID: "C", Hop: 0, Kind: obs.KindEnqueue, SentAt: t0, EnqueuedAt: ms(1)},
	}
	hb := AggregateSpans(spans)
	if hb.Spans != 6 || hb.Traces != 3 {
		t.Errorf("spans/traces = %d/%d, want 6/3", hb.Spans, hb.Traces)
	}
	if hb.MultiHopTraces != 2 {
		t.Errorf("multi-hop traces = %d, want 2", hb.MultiHopTraces)
	}
	if hb.MaxHops != 3 {
		t.Errorf("max hops = %d, want 3", hb.MaxHops)
	}
	if hb.EnqueueWait.Count != 2 {
		t.Errorf("enqueue-wait samples = %d, want 2 (undelivered span contributes none)", hb.EnqueueWait.Count)
	}
	if hb.WALWait.Count != 1 || hb.WALWait.P50 != 500*time.Microsecond {
		t.Errorf("wal-wait = %+v, want one 500µs sample", hb.WALWait)
	}
	if hb.WireRTT.Count != 1 || hb.WireRTT.P50 != 2*time.Millisecond {
		t.Errorf("wire-rtt = %+v, want one 2ms sample", hb.WireRTT)
	}
	if hb.Forward.Count != 1 || hb.Forward.P50 != 3*time.Millisecond {
		t.Errorf("forward = %+v, want one 3ms sample", hb.Forward)
	}
	if hb.Settle.Count != 2 {
		t.Errorf("settle samples = %d, want 2", hb.Settle.Count)
	}

	out := FormatHopBreakdown(hb)
	for _, want := range []string{"enqueue-wait", "wal-wait", "wire-rtt", "forward", "settle", "deepest 3"} {
		if !strings.Contains(out, want) {
			t.Errorf("breakdown table missing %q:\n%s", want, out)
		}
	}
}

func TestHopStatQuantiles(t *testing.T) {
	var ds []time.Duration
	for i := 1; i <= 100; i++ {
		ds = append(ds, time.Duration(i)*time.Millisecond)
	}
	s := hopStat(ds)
	if s.Count != 100 {
		t.Errorf("count = %d", s.Count)
	}
	if s.P50 != 50*time.Millisecond || s.P95 != 95*time.Millisecond || s.P99 != 99*time.Millisecond {
		t.Errorf("quantiles = %v/%v/%v", s.P50, s.P95, s.P99)
	}
	if z := hopStat(nil); z.Count != 0 {
		t.Errorf("empty stat = %+v", z)
	}
}
