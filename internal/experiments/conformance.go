package experiments

import (
	"fmt"
	"strings"
	"time"

	"jmsharness/internal/analysis"
	"jmsharness/internal/broker"
	"jmsharness/internal/faults"
	"jmsharness/internal/harness"
	"jmsharness/internal/jms"
	"jmsharness/internal/model"
	"jmsharness/internal/tracedb"
)

// ConformanceRow is one row of the fault-detection matrix: a provider
// (correct or seeded with a specific fault) and what the checker found.
type ConformanceRow struct {
	// Provider names the provider variant.
	Provider string
	// SeededProperty is the property the seeded fault should violate
	// ("" for the correct provider).
	SeededProperty model.Property
	// Detected reports whether that property (or, for the correct
	// provider, full conformance) came out as expected.
	Detected bool
	// Violations is the number of violations of the seeded property.
	Violations int
	// TotalViolations counts violations across all properties.
	TotalViolations int
}

// ConformanceMatrix exercises the harness's reason for existing: each
// seeded provider fault must be caught by the matching safety property,
// and the correct provider must pass everything. It returns one row per
// provider variant.
func ConformanceMatrix(scale float64) ([]ConformanceRow, error) {
	baseCfg := func(name string) harness.Config {
		return harness.Config{
			Name:        name,
			Destination: jms.Queue("conformance-" + name),
			Producers:   []harness.ProducerConfig{{ID: "p1", Rate: 400, BodySize: 64}},
			Consumers:   []harness.ConsumerConfig{{ID: "c1"}},
			Warmup:      scaleDur(20*time.Millisecond, scale),
			Run:         scaleDur(250*time.Millisecond, scale),
			Warmdown:    scaleDur(150*time.Millisecond, scale),
		}
	}
	type variant struct {
		name   string
		seeded model.Property
		wrap   func(jms.ConnectionFactory) jms.ConnectionFactory
		adjust func(*harness.Config)
		inner  broker.Profile
	}
	variants := []variant{
		{name: "correct", wrap: func(f jms.ConnectionFactory) jms.ConnectionFactory { return f },
			inner: broker.Unlimited()},
		{name: "dropper", seeded: model.PropRequiredMessages,
			wrap:  func(f jms.ConnectionFactory) jms.ConnectionFactory { return faults.NewDropper(f, 3) },
			inner: broker.Unlimited()},
		{name: "duplicator", seeded: model.PropNoDuplicates,
			wrap:  func(f jms.ConnectionFactory) jms.ConnectionFactory { return faults.NewDuplicator(f, 4) },
			inner: broker.Unlimited()},
		{name: "reorderer", seeded: model.PropMessageOrdering,
			wrap:  func(f jms.ConnectionFactory) jms.ConnectionFactory { return faults.NewReorderer(f, 5) },
			inner: broker.Unlimited()},
		{name: "corrupter", seeded: model.PropDeliveryIntegrity,
			wrap:  func(f jms.ConnectionFactory) jms.ConnectionFactory { return faults.NewCorrupter(f, 4) },
			inner: broker.Unlimited()},
		{name: "ttl-ignorer", seeded: model.PropExpiredMessages,
			wrap: func(f jms.ConnectionFactory) jms.ConnectionFactory { return faults.NewTTLIgnorer(f) },
			adjust: func(cfg *harness.Config) {
				cfg.Producers[0].TTLs = []time.Duration{0, time.Millisecond}
			},
			inner: broker.Profile{Name: "latent", BaseLatency: 15 * time.Millisecond}},
		{name: "priority-inverter", seeded: model.PropMessagePriority,
			wrap: func(f jms.ConnectionFactory) jms.ConnectionFactory { return faults.NewPriorityInverter(f, 5) },
			adjust: func(cfg *harness.Config) {
				cfg.Producers[0].Priorities = []jms.Priority{1, 9}
			},
			inner: broker.Unlimited()},
	}

	rows := make([]ConformanceRow, 0, len(variants))
	for i, v := range variants {
		b, err := broker.New(broker.Options{Name: v.name, Profile: v.inner, Seed: uint64(i + 1)})
		if err != nil {
			return nil, err
		}
		cfg := baseCfg(v.name)
		if v.adjust != nil {
			v.adjust(&cfg)
		}
		tr, err := harness.NewRunner(v.wrap(b), nil).Run(cfg)
		if err != nil {
			_ = b.Close()
			return nil, err
		}
		report, err := model.Check(tr, model.DefaultConfig())
		if err != nil {
			_ = b.Close()
			return nil, err
		}
		if err := b.Close(); err != nil {
			return nil, err
		}
		row := ConformanceRow{
			Provider:        v.name,
			SeededProperty:  v.seeded,
			TotalViolations: len(report.Violations()),
		}
		if v.seeded == "" {
			row.Detected = report.OK()
		} else if res, ok := report.Result(v.seeded); ok {
			row.Violations = len(res.Violations)
			row.Detected = len(res.Violations) > 0
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// FormatConformance renders the fault-detection matrix.
func FormatConformance(rows []ConformanceRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-18s %-22s %-9s %10s\n", "Provider", "SeededViolation", "Detected", "Violations")
	for _, r := range rows {
		seeded := string(r.SeededProperty)
		if seeded == "" {
			seeded = "(none: must pass)"
		}
		fmt.Fprintf(&b, "%-18s %-22s %-9t %10d\n", r.Provider, seeded, r.Detected, r.Violations)
	}
	return b.String()
}

// IngestResult compares the §4.1 analysis strategies on one synthetic
// trace.
type IngestResult struct {
	Events         int
	DBLoad         time.Duration
	DBQuery        time.Duration
	Streaming      time.Duration
	DeliveredBoth  bool
	ThroughputDiff float64
}

// IngestComparison reproduces the §4.1 experience: load a large trace
// into the results database and query it, versus streaming aggregation
// ("for performance testing, a database is not really necessary ...
// computed by the daemon prince"). Both paths must agree on the
// measures.
func IngestComparison(events int) (*IngestResult, error) {
	tr := SyntheticTrace(events)

	dbStart := time.Now()
	db := tracedb.New()
	db.BulkLoad("ingest", tr.Events)
	dbLoad := time.Since(dbStart)

	queryStart := time.Now()
	rows := db.Delays("ingest")
	dbQuery := time.Since(queryStart)

	streamStart := time.Now()
	agg := analysis.NewStreamAggregator()
	for _, ev := range tr.Events {
		agg.Observe(ev)
	}
	streamed := agg.Finalize()
	streaming := time.Since(streamStart)

	batch, err := analysis.Analyze(tr, analysis.Options{})
	if err != nil {
		return nil, err
	}
	return &IngestResult{
		Events:         len(tr.Events),
		DBLoad:         dbLoad,
		DBQuery:        dbQuery,
		Streaming:      streaming,
		DeliveredBoth:  int64(len(rows)) == streamed.Consumer.Count,
		ThroughputDiff: streamed.Consumer.PerSecond - batch.Consumer.PerSecond,
	}, nil
}

// FormatIngest renders the ingest comparison.
func FormatIngest(r *IngestResult) string {
	return fmt.Sprintf(
		"events=%d db-load=%v db-query=%v streaming=%v agree=%t (throughput diff %.3f msgs/s)\n",
		r.Events, r.DBLoad, r.DBQuery, r.Streaming, r.DeliveredBoth, r.ThroughputDiff)
}
