package experiments

import "testing"

// TestQuorumConformance is the JMSQUORUM smoke stage: with R=2, Q=2 the
// primary's preferred replication link goes dark mid-run and the
// primary then dies for good — yet every safety property must hold,
// because the second follower kept acknowledging through the partition
// and promotion lands on a copy holding everything ever acked.
func TestQuorumConformance(t *testing.T) {
	res, err := Quorum(0.5)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", FormatQuorum(res))
	if !res.Passed || res.Violations != 0 {
		t.Errorf("quorum run violated safety: passed=%t violations=%d (%v)",
			res.Passed, res.Violations, res.ViolatedProperties)
	}
	if res.Promotions < 1 {
		t.Errorf("no promotion observed; replica events: %v", res.ReplicaEvents)
	}
	if res.MTTR <= 0 {
		t.Error("no post-kill delivery on the victim queue: failover did not recover consumers")
	}
	if res.UnavailableWindow <= 0 {
		t.Error("no post-kill successful send on the victim queue: failover did not recover producers")
	}
}

// TestSingleFollowerCoverGapAttributed is the regression pair for the
// silent cover gap the quorum work closes: under R=1 the partitioned
// link is the destination's ONLY cover, so messages acked (after the
// semisync timeout degraded the link, visibly) but undelivered when the
// primary dies exist nowhere else — and the conformance checker must
// attribute the loss rather than let it pass silently. The identical
// schedule under R=2, Q=2 loses nothing: that contrast is the tentpole.
func TestSingleFollowerCoverGapAttributed(t *testing.T) {
	res, err := quorumRun(0.5, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", FormatQuorum(res))
	if res.Passed || res.Violations == 0 {
		t.Fatalf("R=1 run with a dark only-link lost nothing? passed=%t violations=%d — the cover gap went undetected",
			res.Passed, res.Violations)
	}
	attributed := false
	for _, p := range res.ViolatedProperties {
		attributed = attributed || p == "required-messages"
	}
	if !attributed {
		t.Errorf("acked-message loss not attributed to the required-messages property; violated: %v",
			res.ViolatedProperties)
	}
	if res.UnquorateWrites == 0 {
		t.Error("degraded only-link produced no unquorate writes; the loss window was invisible")
	}
}
