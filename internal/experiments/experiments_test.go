package experiments

import (
	"strings"
	"testing"
	"time"

	"jmsharness/internal/analysis"
	"jmsharness/internal/broker"
)

// reducedSweep trims a sweep to three representative demand points and
// shortens the periods, keeping unit tests fast while preserving shape.
func reducedSweep(opts SweepOptions) SweepOptions {
	opts.DemandsBps = []float64{50_000, 250_000, 500_000}
	opts.Warmup = 100 * time.Millisecond
	opts.Run = 600 * time.Millisecond
	opts.Warmdown = 200 * time.Millisecond
	return opts
}

func TestFigure2Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-dependent sweep")
	}
	points, err := ThroughputSweep(reducedSweep(Figure2Options(1)))
	if err != nil {
		t.Fatal(err)
	}
	low, mid, high := points[0], points[1], points[2]
	// Below saturation (~49 offered vs 45 capacity) both near demand.
	if low.PublisherMsgs < 30 {
		t.Errorf("low-demand publisher = %.1f", low.PublisherMsgs)
	}
	// Past saturation both plateau near the 45 msgs/s capacity: flat,
	// not collapsing and not climbing.
	for _, p := range []ThroughputPoint{mid, high} {
		if p.PublisherMsgs < 35 || p.PublisherMsgs > 60 {
			t.Errorf("saturated publisher = %.1f, want ~45", p.PublisherMsgs)
		}
		if p.SubscriberMsgs < 30 || p.SubscriberMsgs > 60 {
			t.Errorf("saturated subscriber = %.1f, want ~45", p.SubscriberMsgs)
		}
	}
	// Flat plateau: within 25% of each other.
	if diff := mid.SubscriberMsgs - high.SubscriberMsgs; diff > mid.SubscriberMsgs*0.25 {
		t.Errorf("plateau not flat: %.1f then %.1f", mid.SubscriberMsgs, high.SubscriberMsgs)
	}
	t.Logf("\n%s", FormatThroughputTable("figure 2 (reduced)", points))
}

func TestFigure3Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-dependent sweep")
	}
	points, err := ThroughputSweep(reducedSweep(Figure3Options(1)))
	if err != nil {
		t.Fatal(err)
	}
	low, mid, high := points[0], points[1], points[2]
	// Publisher tracks demand (no ingress flow control): 20, 100, 200.
	if low.PublisherMsgs < 15 || low.PublisherMsgs > 25 {
		t.Errorf("publisher at 50k = %.1f, want ~20", low.PublisherMsgs)
	}
	if high.PublisherMsgs < 160 {
		t.Errorf("publisher at 500k = %.1f, want ~200", high.PublisherMsgs)
	}
	// Subscriber tracks demand below capacity...
	if low.SubscriberMsgs < 15 {
		t.Errorf("subscriber at 50k = %.1f", low.SubscriberMsgs)
	}
	if mid.SubscriberMsgs < 80 {
		t.Errorf("subscriber at 250k = %.1f, want ~100", mid.SubscriberMsgs)
	}
	// ...and DROPS when over-stressed: the 500k point must fall below
	// the provider's nominal 180 msgs/s and below what pure saturation
	// would give.
	if high.SubscriberMsgs >= high.PublisherMsgs {
		t.Errorf("subscriber (%.1f) should lag publisher (%.1f) when over-stressed",
			high.SubscriberMsgs, high.PublisherMsgs)
	}
	if high.SubscriberMsgs > 175 {
		t.Errorf("subscriber at 500k = %.1f, want visible degradation below 180", high.SubscriberMsgs)
	}
	t.Logf("\n%s", FormatThroughputTable("figure 3 (reduced)", points))
}

func TestFigure1Detected(t *testing.T) {
	res, err := Figure1(1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Violations == 0 {
		t.Fatal("figure 1 scenario not detected")
	}
	if res.Example == "" {
		t.Error("no example violation")
	}
}

func TestPerformanceMeasures(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-dependent")
	}
	res, err := PerformanceMeasures(0.5)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Conformance.OK() {
		t.Errorf("measurement workload failed conformance:\n%s", res.Conformance)
	}
	m := res.Measures
	if m.Producer.Count == 0 || m.Consumer.Count == 0 {
		t.Fatal("no traffic measured")
	}
	if m.Delay.Mean <= 0 || m.Delay.Max < m.Delay.Mean || m.Delay.Min > m.Delay.Mean {
		t.Errorf("incoherent delay stats: %+v", m.Delay)
	}
	if len(m.Fairness.PerProducerMean) != 2 || len(m.Fairness.PerConsumerMean) != 2 {
		t.Errorf("fairness coverage: %d producers, %d consumers",
			len(m.Fairness.PerProducerMean), len(m.Fairness.PerConsumerMean))
	}
}

func TestProviderComparisonFactorOfTen(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-dependent")
	}
	rows, err := ProviderComparison(0.5)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("%d rows", len(rows))
	}
	fast, slow := rows[0], rows[2]
	ratio := fast.SubscriberMsgs / slow.SubscriberMsgs
	// "performance differences of a factor of 10 in some cases".
	if ratio < 5 || ratio > 20 {
		t.Errorf("fast/slow ratio = %.1f, want ~10\n%s", ratio, FormatComparison(rows))
	}
	if !(rows[0].SubscriberMsgs > rows[1].SubscriberMsgs && rows[1].SubscriberMsgs > rows[2].SubscriberMsgs) {
		t.Errorf("ordering violated:\n%s", FormatComparison(rows))
	}
	t.Logf("\n%s", FormatComparison(rows))
}

func TestSyntheticTrace(t *testing.T) {
	tr := SyntheticTrace(3000)
	if len(tr.Events) < 2900 || len(tr.Events) > 3100 {
		t.Errorf("synthetic trace has %d events", len(tr.Events))
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	m, err := analysis.Analyze(tr, analysis.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if m.Producer.Count == 0 || m.Consumer.Count == 0 {
		t.Error("synthetic trace unusable for analysis")
	}
}

func TestSweepErrors(t *testing.T) {
	opts := Figure2Options(1)
	opts.DemandsBps = []float64{0}
	if _, err := ThroughputSweep(opts); err == nil {
		t.Error("zero demand accepted")
	}
	bad := SweepOptions{Profile: broker.Profile{Name: "bad", SendRate: -1},
		DemandsBps: []float64{1000}, MsgSize: 100, Run: time.Millisecond}
	if _, err := ThroughputSweep(bad); err == nil {
		t.Error("invalid profile accepted")
	}
}

func TestFormatters(t *testing.T) {
	table := FormatThroughputTable("t", []ThroughputPoint{{DemandBps: 1000, OfferedMsgs: 1, PublisherMsgs: 1, SubscriberMsgs: 1}})
	if !strings.Contains(table, "Demand") || !strings.Contains(table, "1000") {
		t.Errorf("table:\n%s", table)
	}
	cmp := FormatComparison([]ComparisonRow{{Provider: "x", PublisherMsgs: 1, SubscriberMsgs: 1, MeanDelay: time.Millisecond}})
	if !strings.Contains(cmp, "Provider") || !strings.Contains(cmp, "x") {
		t.Errorf("comparison:\n%s", cmp)
	}
}
