package experiments

import (
	"fmt"
	"strings"
	"sync"
	"time"

	"jmsharness/internal/broker"
	"jmsharness/internal/chaos"
	"jmsharness/internal/harness"
	"jmsharness/internal/jms"
	"jmsharness/internal/model"
	"jmsharness/internal/obs"
	"jmsharness/internal/qos"
	"jmsharness/internal/replica"
	"jmsharness/internal/trace"
)

// QuorumResult is the outcome of the quorum-failover experiment: a
// replicated cluster with two followers per destination loses the
// primary's replication link to its preferred follower mid-run, and
// then the primary itself — permanently. With R=2 the second follower
// keeps full cover through the partition, so the witness-quorum
// detector promotes the most-caught-up survivor and not one acked
// message is lost. The same schedule against R=1 is the PR-7 silent
// cover gap: the only link is dark when the primary dies, and the
// conformance checker attributes the acked-message loss.
type QuorumResult struct {
	// Nodes is the cluster size; Queues the number of loaded queues.
	Nodes  int `json:"nodes"`
	Queues int `json:"queues"`
	// ReplicationFactor and Quorum are the cover settings under test.
	ReplicationFactor int `json:"replication_factor"`
	Quorum            int `json:"quorum"`
	// VictimNode is the killed primary; PartitionedLink names the
	// replication link (victim -> preferred follower) that went dark
	// before the kill.
	VictimNode      string `json:"victim_node"`
	PartitionedLink string `json:"partitioned_link"`
	// PartitionAt and KillAt are the fault offsets from test start.
	PartitionAt time.Duration `json:"partition_at"`
	KillAt      time.Duration `json:"kill_at"`
	// DetectionBudget is the configured detector worst case
	// (HeartbeatEvery × HeartbeatMisses).
	DetectionBudget time.Duration `json:"detection_budget"`
	// Promotions counts node promotions (expected: 1, the victim).
	Promotions int64 `json:"promotions"`
	// UnquorateWrites counts writes acked below the configured quorum —
	// the partitioned link degrading visibly instead of blocking.
	UnquorateWrites int64 `json:"unquorate_writes"`
	// UnavailableWindow is the victim queue's send gap around the kill;
	// MTTR the kill-to-first-delivery recovery time.
	UnavailableWindow time.Duration `json:"unavailable_window"`
	MTTR              time.Duration `json:"mttr"`
	// Sent, SendErrors and Delivered count across all queues.
	Sent       int64 `json:"sent"`
	SendErrors int64 `json:"send_errors"`
	Delivered  int64 `json:"delivered"`
	// Violations counts safety-property violations; ViolatedProperties
	// names the properties that fired. Zero/empty with R=2: the second
	// follower covers everything ever acked.
	Violations         int      `json:"violations"`
	ViolatedProperties []string `json:"violated_properties,omitempty"`
	// Passed reports full conformance.
	Passed bool `json:"passed"`
	// QoS is the verdict on QuorumContract.
	QoS *qos.Report `json:"qos,omitempty"`
	// ReplicaEvents is the manager's promotion/degrade event log.
	ReplicaEvents []string `json:"replica_events,omitempty"`
}

// quorumProxies lazily interposes a chaos proxy on every replication
// link so one of them can be partitioned mid-run, after placement
// reveals which link matters.
type quorumProxies struct {
	mu sync.Mutex
	m  map[[2]int]*chaos.Proxy
}

func (qp *quorumProxies) wrap(from, to int, addr string) string {
	qp.mu.Lock()
	defer qp.mu.Unlock()
	if p, ok := qp.m[[2]int{from, to}]; ok {
		return p.Addr()
	}
	p, err := chaos.New(chaos.Options{Target: addr})
	if err != nil {
		return addr // fall back to the direct link
	}
	qp.m[[2]int{from, to}] = p
	return p.Addr()
}

func (qp *quorumProxies) get(from, to int) *chaos.Proxy {
	qp.mu.Lock()
	defer qp.mu.Unlock()
	return qp.m[[2]int{from, to}]
}

func (qp *quorumProxies) close() {
	qp.mu.Lock()
	defer qp.mu.Unlock()
	for _, p := range qp.m {
		_ = p.Close()
	}
}

// Quorum runs the quorum-failover experiment at R=2, Q=2: steady
// persistent load on six queues, the primary's preferred replication
// link partitioned a sixth of the way through the run, the primary
// itself killed (never restarted) a third of the way in. Every safety
// property must hold straight through: the second follower kept
// acknowledging during the partition, so promotion lands on a replica
// that holds everything ever acked.
func Quorum(scale float64) (*QuorumResult, error) {
	return quorumRun(scale, 2, 2)
}

// quorumRun is Quorum with the replication factor and quorum under the
// caller's control — the R=1 configuration reproduces the silent-cover
// gap this experiment exists to guard against.
func quorumRun(scale float64, rf, quorum int) (*QuorumResult, error) {
	const (
		nodes  = 3
		queues = 6
	)
	hbEvery := 10 * time.Millisecond
	hbMisses := 3
	// The latent profile keeps a deterministic in-flight window: sends
	// acked in the last BaseLatency before the kill have not been
	// delivered yet, so the only thing standing between them and loss is
	// replication cover.
	profile := broker.Profile{Name: "qm-latent", BaseLatency: 40 * time.Millisecond}
	qp := &quorumProxies{m: map[[2]int]*chaos.Proxy{}}
	defer qp.close()
	reg := obs.NewRegistry()
	m, err := replica.NewLocal(nodes, replica.Options{
		Profile:           profile,
		Seed:              1,
		HeartbeatEvery:    hbEvery,
		HeartbeatMisses:   hbMisses,
		SyncTimeout:       25 * time.Millisecond,
		ReplicationFactor: rf,
		QuorumSize:        quorum,
		Metrics:           reg,
		WrapLink:          qp.wrap,
	})
	if err != nil {
		return nil, err
	}
	defer m.Close()
	c := m.Cluster()

	// The victim is whichever node owns the first queue; the partitioned
	// link is its ranking-preferred follower for that queue. Placement is
	// seed-stable, so both are too.
	victim := c.QueueNode("qm.q0")
	ranked := c.RankedLiveQueue("qm.q0")
	if len(ranked) < 2 {
		return nil, fmt.Errorf("experiments: queue qm.q0 has no follower to partition")
	}
	partner := ranked[1]

	cfg := harness.Config{
		Name:     "quorum",
		Warmup:   20 * time.Millisecond,
		Run:      scaleDur(600*time.Millisecond, scale),
		Warmdown: scaleDur(400*time.Millisecond, 1),
		Seed:     1,
	}
	for i := 0; i < queues; i++ {
		name := fmt.Sprintf("qm.q%d", i)
		cfg.Producers = append(cfg.Producers, harness.ProducerConfig{
			ID: fmt.Sprintf("p%d", i), Destination: jms.Queue(name), Rate: 250, BodySize: 64,
		})
		cfg.Consumers = append(cfg.Consumers, harness.ConsumerConfig{
			ID: fmt.Sprintf("c%d", i), Destination: jms.Queue(name),
		})
	}
	partAt := cfg.Warmup + cfg.Run/6
	killAt := cfg.Warmup + cfg.Run/3
	cfg.Faults = []harness.FaultEvent{{At: killAt, Node: victim, NoRestart: true}}

	// The victim's link to the preferred follower dials during manager
	// startup; wait for the proxy, then schedule the one-way-pair
	// blackout relative to harness start. The partition never heals — the
	// victim dies holding it.
	deadline := time.Now().Add(2 * time.Second)
	for qp.get(victim, partner) == nil {
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("experiments: replication link %d->%d never dialed", victim, partner)
		}
		time.Sleep(time.Millisecond)
	}
	timer := time.AfterFunc(partAt, func() { qp.get(victim, partner).Partition(chaos.Both) })
	defer timer.Stop()

	tr, err := harness.NewRunner(c, nil).Run(cfg)
	if err != nil {
		return nil, err
	}
	report, err := model.Check(tr, model.DefaultConfig())
	if err != nil {
		return nil, err
	}

	res := &QuorumResult{
		Nodes:             nodes,
		Queues:            queues,
		ReplicationFactor: rf,
		Quorum:            quorum,
		VictimNode:        c.NodeName(victim),
		PartitionedLink:   fmt.Sprintf("%s->%s", c.NodeName(victim), c.NodeName(partner)),
		PartitionAt:       partAt,
		KillAt:            killAt,
		DetectionBudget:   hbEvery * time.Duration(hbMisses),
		Promotions:        m.Promotions(),
		UnquorateWrites:   reg.Counter("replica.unquorate_writes").Value(),
		Violations:        len(report.Violations()),
		Passed:            report.OK(),
		QoS:               qosGate(QuorumContract(), tr),
		ReplicaEvents:     m.Events(),
	}
	for _, p := range report.ViolatedProperties() {
		res.ViolatedProperties = append(res.ViolatedProperties, string(p))
	}

	victimQueue := "queue:qm.q0"
	var crashTime, lastSendBefore, firstSendAfter, firstDeliverAfter time.Time
	for i := range tr.Events {
		ev := &tr.Events[i]
		switch ev.Type {
		case trace.EventCrash:
			if crashTime.IsZero() {
				crashTime = ev.Time
			}
		case trace.EventSendEnd:
			if ev.Err != "" {
				res.SendErrors++
				continue
			}
			res.Sent++
			if ev.Dest != victimQueue {
				continue
			}
			if crashTime.IsZero() {
				lastSendBefore = ev.Time
			} else if firstSendAfter.IsZero() {
				firstSendAfter = ev.Time
			}
		case trace.EventDeliver:
			res.Delivered++
			if !crashTime.IsZero() && firstDeliverAfter.IsZero() && ev.Dest == victimQueue {
				firstDeliverAfter = ev.Time
			}
		}
	}
	if !lastSendBefore.IsZero() && !firstSendAfter.IsZero() {
		res.UnavailableWindow = firstSendAfter.Sub(lastSendBefore)
	}
	if !crashTime.IsZero() && !firstDeliverAfter.IsZero() {
		res.MTTR = firstDeliverAfter.Sub(crashTime)
	}
	return res, nil
}

// FormatQuorum renders the quorum experiment result.
func FormatQuorum(r *QuorumResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Quorum failover: %d nodes, R=%d Q=%d, %d queues, link %s partitioned at %v, victim %s killed at %v (never restarted)\n",
		r.Nodes, r.ReplicationFactor, r.Quorum, r.Queues,
		r.PartitionedLink, r.PartitionAt.Round(time.Millisecond),
		r.VictimNode, r.KillAt.Round(time.Millisecond))
	fmt.Fprintf(&b, "%-22s %12s\n", "Measure", "Value")
	fmt.Fprintf(&b, "%-22s %12v\n", "Detection budget", r.DetectionBudget)
	fmt.Fprintf(&b, "%-22s %12d\n", "Promotions", r.Promotions)
	fmt.Fprintf(&b, "%-22s %12d\n", "Unquorate writes", r.UnquorateWrites)
	fmt.Fprintf(&b, "%-22s %12v\n", "Unavailable window", r.UnavailableWindow.Round(100*time.Microsecond))
	fmt.Fprintf(&b, "%-22s %12v\n", "MTTR (first delivery)", r.MTTR.Round(100*time.Microsecond))
	fmt.Fprintf(&b, "%-22s %12d\n", "Sent ok", r.Sent)
	fmt.Fprintf(&b, "%-22s %12d\n", "Send errors", r.SendErrors)
	fmt.Fprintf(&b, "%-22s %12d\n", "Delivered", r.Delivered)
	fmt.Fprintf(&b, "%-22s %12d\n", "Violations", r.Violations)
	fmt.Fprintf(&b, "%-22s %12t\n", "Passed", r.Passed)
	for _, ev := range r.ReplicaEvents {
		fmt.Fprintf(&b, "  replica: %s\n", ev)
	}
	return b.String()
}
