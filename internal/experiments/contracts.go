package experiments

import (
	"time"

	"jmsharness/internal/qos"
	"jmsharness/internal/trace"
)

// Every timed experiment declares its QoS contract here, next to the
// workload it judges, so a budget and the load it presumes can be read
// (and tuned) together. Budgets are deliberately loose — 3-5× the
// numbers a quiet development container produces — because the gate's
// job is to catch regressions in kind (a stack that stops meeting its
// floor, a failover that stops converging), not to race the scheduler.
// On loaded CI hosts the JMSQOS_SLACK environment variable (read via
// qos.SlackFromEnv, exported in one place by ci.sh) widens every budget
// uniformly; the contracts themselves never change for that.

// qosGate evaluates a contract over a trace with the environment slack
// applied. Errors are deliberately not fatal to the experiment: a
// contract that cannot be evaluated (empty trace) reports nil, and the
// caller's gate treats nil as "not judged".
func qosGate(c *qos.Contract, tr *trace.Trace) *qos.Report {
	rep, err := c.WithSlack(qos.SlackFromEnv()).EvaluateTrace(tr)
	if err != nil {
		return nil
	}
	return rep
}

// MeasuresContract bounds the §3.2 measurement workload: 120 msgs/s
// offered to ProviderB (150 msgs/s service rate), two consumers. The
// queue never saturates, so delay stays near the profile's base
// latency and consumption tracks the offered rate.
func MeasuresContract() *qos.Contract {
	return &qos.Contract{
		Name:       "measures",
		WarmupTrim: 50 * time.Millisecond,
		MinWindow:  100 * time.Millisecond,
		Checks: []qos.Check{
			{Kind: qos.KindDelayP95, Max: 250 * time.Millisecond},
			{Kind: qos.KindThroughputFloor, MinPerSec: 60},
			{Kind: qos.KindConsumerFairness, Max: 150 * time.Millisecond},
			{Kind: qos.KindRejectionCeiling, MaxRatio: 0.01},
		},
	}
}

// FailoverContract bounds the replicated-failover drill. The MTTR and
// unavailability checks are scoped to fo.q0 — the victim is defined as
// whichever node owns fo.q0, so that queue always rides the promotion.
// The detector worst case is 30ms (10ms heartbeats × 3 misses); 400ms
// of budget covers detection, promotion and the consumers' first
// delivery off the follower with an order of magnitude to spare. The
// throughput floor (of 1,500 msgs/s offered across six queues) and the
// rejection ceiling bound the collateral damage: the non-victim queues
// must keep flowing through the outage.
func FailoverContract() *qos.Contract {
	return &qos.Contract{
		Name:      "failover",
		MinWindow: 100 * time.Millisecond,
		Checks: []qos.Check{
			{Kind: qos.KindUnavailability, Scope: "queue:fo.q0", Max: 400 * time.Millisecond},
			{Kind: qos.KindMTTR, Scope: "queue:fo.q0", Max: 400 * time.Millisecond},
			{Kind: qos.KindThroughputFloor, MinPerSec: 300},
			{Kind: qos.KindRejectionCeiling, MaxRatio: 0.30},
		},
	}
}

// QuorumContract bounds the quorum-failover drill. Scoping mirrors
// FailoverContract: the victim owns qm.q0, so that queue rides both the
// link partition and the promotion. The latent broker profile (40ms)
// and the 30ms detector worst case both sit inside the recovery
// budgets; the throughput floor and rejection ceiling bound the
// collateral damage of the degraded link plus the outage.
func QuorumContract() *qos.Contract {
	return &qos.Contract{
		Name:      "quorum",
		MinWindow: 100 * time.Millisecond,
		Checks: []qos.Check{
			{Kind: qos.KindUnavailability, Scope: "queue:qm.q0", Max: 400 * time.Millisecond},
			{Kind: qos.KindMTTR, Scope: "queue:qm.q0", Max: 450 * time.Millisecond},
			{Kind: qos.KindThroughputFloor, MinPerSec: 300},
			{Kind: qos.KindRejectionCeiling, MaxRatio: 0.30},
		},
	}
}

// ChaosContract bounds one chaos profile's run (300 msgs/s offered
// through the proxy). Every profile is held to a recovery floor — the
// run as a whole still moves messages — and the non-partitioning ones
// to a tight rejection ceiling too. A delay budget only applies where
// the proxied pipeline can actually keep up with the offered rate:
// the latency profile's 3ms-per-chunk tax and the bandwidth cap (the
// wire framing dwarfs the 64-byte bodies) both drop capacity below
// the offered 300 msgs/s, so their delays are backlog properties that
// grow with run length, and partition/reset profiles legitimately
// stall in-flight messages while the network is down.
func ChaosContract(profile string) *qos.Contract {
	c := &qos.Contract{
		Name:       "chaos-" + profile,
		WarmupTrim: 20 * time.Millisecond,
		MinWindow:  100 * time.Millisecond,
		Checks: []qos.Check{
			{Kind: qos.KindThroughputFloor, MinPerSec: 30},
		},
	}
	switch profile {
	case "clean", "latency", "bandwidth":
		c.Checks = append(c.Checks,
			qos.Check{Kind: qos.KindRejectionCeiling, MaxRatio: 0.02})
	}
	if profile == "clean" {
		c.Checks = append(c.Checks,
			qos.Check{Kind: qos.KindDelayP95, Max: 100 * time.Millisecond})
	}
	return c
}

// ScaleContract bounds one shard count's point in the scaling sweep.
// The workload saturates every configuration (3,000 msgs/s offered),
// so delay is a property of the backlog, not the provider — the only
// meaningful obligation is that measured consumption reaches a decent
// fraction of the configured aggregate capacity.
func ScaleContract(capacityPerSec float64) *qos.Contract {
	return &qos.Contract{
		Name:       "scale",
		WarmupTrim: 50 * time.Millisecond,
		MinWindow:  100 * time.Millisecond,
		Checks: []qos.Check{
			{Kind: qos.KindThroughputFloor, MinPerSec: capacityPerSec * 0.4},
		},
	}
}

// SaturationContract floors one stack's unthrottled capacity. The
// floors sit far under the measured numbers (broker and wire both
// clear five figures, the fsync-bound WAL clears four on this
// container) but far above each stack's known failure modes — the
// pre-overhaul broker collapsed to three figures consumed when the
// backlog memmove buried the consumers.
//
// The pipelined stacks split their floors: produced is the tier metric
// (credit-windowed sends sharing group commits — walshard clears ~95k
// and wirepipe ~30-45k on this single-core container, against the ~19k
// blocking-send plateau the sharded WAL measured before pipelining),
// while consumed stays modest because an unthrottled producer fleet
// starves the consumers, whose every receive still pays a blocking
// MarkDelivered through the same commit loops.
func SaturationContract(stack string) *qos.Contract {
	prod, cons := 2000.0, 2000.0
	switch stack {
	case "wal":
		prod, cons = 300, 300
	case "walshard":
		prod, cons = 25000, 100
	case "wirepipe":
		prod, cons = 8000, 50
	}
	return &qos.Contract{
		Name:      "saturation-" + stack,
		MinWindow: 100 * time.Millisecond,
		Checks: []qos.Check{
			{Kind: qos.KindThroughputFloor, MinPerSec: cons},
			{Kind: qos.KindProducerFloor, MinPerSec: prod},
		},
	}
}

// saturationObservations synthesizes the qos measurement set for one
// saturation point. The experiment measures in-function (no trace), so
// the observations are built from its own counters: the measured
// window, produced/consumed counts, and the subsampled delay samples.
func saturationObservations(window time.Duration, produced, consumed int, delays []time.Duration) *qos.Observations {
	o := &qos.Observations{
		Window:       window,
		Produced:     produced,
		Consumed:     consumed,
		SendAttempts: produced,
	}
	for _, d := range delays {
		o.Delays = append(o.Delays, d.Seconds())
	}
	return o
}

// HopContract bounds the per-hop latency breakdown of a saturation
// span export. Enqueue wait and settle are backlog properties under
// an unthrottled load, so only the bounded hops are budgeted: the wire
// round trip and the WAL group-commit wait.
func HopContract() *qos.Contract {
	return &qos.Contract{
		Name:       "per-hop",
		MinSamples: 50,
		Checks: []qos.Check{
			{Kind: qos.KindHopP95, Scope: "wire-rtt", Max: 50 * time.Millisecond},
			{Kind: qos.KindHopP95, Scope: "wal-wait", Max: 100 * time.Millisecond},
		},
	}
}

// HopSetFromBreakdown converts the experiments' span aggregation into
// the qos hop set, keyed by the same stage names the breakdown table
// prints (and jmsanalyze -contract accepts as hop scopes).
func HopSetFromBreakdown(hb HopBreakdown) qos.HopSet {
	set := qos.HopSet{}
	add := func(name string, s HopStat) {
		set[name] = qos.HopQuantiles{Count: int(s.Count), P50: s.P50, P95: s.P95, P99: s.P99}
	}
	add("enqueue-wait", hb.EnqueueWait)
	add("wal-wait", hb.WALWait)
	add("wire-rtt", hb.WireRTT)
	add("forward", hb.Forward)
	add("settle", hb.Settle)
	return set
}
