package experiments

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"jmsharness/internal/obs"
)

// Per-hop latency breakdown: where a message's milliseconds went,
// aggregated from a durable span export (obs.JSONLSink). Each exported
// span contributes its stage durations — enqueue wait (mailbox →
// delivery), WAL-commit wait (the slice of the enqueue spent blocked
// on the group committer), wire RTT (client send RPC round trip), and
// settle (delivery → acknowledgement) — and the aggregation reduces
// each stage to p50/p95/p99. This is the report the paper's
// methodology implies but single-hop spans could not produce: a
// causally complete account of one logical message across process,
// node and durability boundaries.

// HopStat summarises one stage's latency distribution.
type HopStat struct {
	Count int64         `json:"count"`
	P50   time.Duration `json:"p50_ns"`
	P95   time.Duration `json:"p95_ns"`
	P99   time.Duration `json:"p99_ns"`
}

// HopBreakdown is the per-hop latency aggregation of a span export.
type HopBreakdown struct {
	// Spans and Traces count the export's volume; MultiHopTraces is
	// how many traces link two or more spans, and MaxHops the largest
	// number of causally linked spans observed under one trace ID.
	Spans          int `json:"spans"`
	Traces         int `json:"traces"`
	MultiHopTraces int `json:"multi_hop_traces"`
	MaxHops        int `json:"max_hops"`

	EnqueueWait HopStat `json:"enqueue_wait"`
	WALWait     HopStat `json:"wal_wait"`
	WireRTT     HopStat `json:"wire_rtt"`
	Forward     HopStat `json:"forward"`
	Settle      HopStat `json:"settle"`
}

// AggregateSpans reduces a span export to its per-hop breakdown.
func AggregateSpans(spans []obs.Span) HopBreakdown {
	var enqueue, wal, rtt, forward, settle []time.Duration
	traces := map[string]int{}
	for _, sp := range spans {
		if sp.TraceID != "" {
			traces[sp.TraceID]++
		}
		switch sp.Kind {
		case obs.KindEnqueue:
			if w := sp.QueueWait(); w > 0 {
				enqueue = append(enqueue, w)
			}
			if sp.WALWaitNs > 0 {
				wal = append(wal, time.Duration(sp.WALWaitNs))
			}
			if s := sp.Settle(); s > 0 {
				settle = append(settle, s)
			}
		case obs.KindSendRPC:
			if d := sp.Duration(); d > 0 {
				rtt = append(rtt, d)
			}
		case obs.KindForward:
			if d := sp.Duration(); d > 0 {
				forward = append(forward, d)
			}
		}
	}
	hb := HopBreakdown{
		Spans:       len(spans),
		Traces:      len(traces),
		EnqueueWait: hopStat(enqueue),
		WALWait:     hopStat(wal),
		WireRTT:     hopStat(rtt),
		Forward:     hopStat(forward),
		Settle:      hopStat(settle),
	}
	for _, n := range traces {
		if n >= 2 {
			hb.MultiHopTraces++
		}
		if n > hb.MaxHops {
			hb.MaxHops = n
		}
	}
	return hb
}

// hopStat sorts and reduces one stage's samples.
func hopStat(ds []time.Duration) HopStat {
	if len(ds) == 0 {
		return HopStat{}
	}
	sort.Slice(ds, func(i, j int) bool { return ds[i] < ds[j] })
	q := func(p float64) time.Duration { return ds[int(p*float64(len(ds)-1))] }
	return HopStat{Count: int64(len(ds)), P50: q(0.50), P95: q(0.95), P99: q(0.99)}
}

// FormatHopBreakdown renders the breakdown as a table.
func FormatHopBreakdown(hb HopBreakdown) string {
	var b strings.Builder
	fmt.Fprintf(&b, "per-hop latency breakdown: %d spans, %d traces (%d multi-hop, deepest %d spans)\n",
		hb.Spans, hb.Traces, hb.MultiHopTraces, hb.MaxHops)
	fmt.Fprintf(&b, "%-14s %10s %12s %12s %12s\n", "stage", "samples", "p50", "p95", "p99")
	row := func(name string, s HopStat) {
		if s.Count == 0 {
			return
		}
		fmt.Fprintf(&b, "%-14s %10d %12v %12v %12v\n", name, s.Count,
			s.P50.Round(time.Microsecond), s.P95.Round(time.Microsecond), s.P99.Round(time.Microsecond))
	}
	row("enqueue-wait", hb.EnqueueWait)
	row("wal-wait", hb.WALWait)
	row("wire-rtt", hb.WireRTT)
	row("forward", hb.Forward)
	row("settle", hb.Settle)
	return b.String()
}
