package experiments

import (
	"fmt"
	"strings"
	"time"

	"jmsharness/internal/harness"
	"jmsharness/internal/jms"
	"jmsharness/internal/model"
	"jmsharness/internal/qos"
	"jmsharness/internal/replica"
	"jmsharness/internal/trace"
)

// FailoverResult is the outcome of the kill-primary-mid-run experiment:
// a replicated cluster under steady persistent load loses one node
// permanently, the failure detector promotes every victim-owned
// destination to its follower, and the run keeps going. The interesting
// numbers are the availability gap seen by clients of the victim's
// queues — alongside full conformance of the whole trace.
type FailoverResult struct {
	// Nodes is the cluster size; Queues the number of loaded queues.
	Nodes  int `json:"nodes"`
	Queues int `json:"queues"`
	// VictimNode is the killed node; VictimQueues the queues it owned
	// (whose clients experience the failover).
	VictimNode   string   `json:"victim_node"`
	VictimQueues []string `json:"victim_queues"`
	// KillAt is when the permanent kill fired, from test start.
	KillAt time.Duration `json:"kill_at"`
	// DetectionBudget is the configured detector worst case
	// (HeartbeatEvery × HeartbeatMisses) — the floor any measured
	// recovery time sits on.
	DetectionBudget time.Duration `json:"detection_budget"`
	// Promotions counts follower promotions (expected: 1, the victim).
	Promotions int64 `json:"promotions"`
	// UnavailableWindow is the victim queues' send gap: last successful
	// send before the kill to first successful send after it.
	UnavailableWindow time.Duration `json:"unavailable_window"`
	// MTTR is time-to-recovery for consumers: kill to the first
	// delivery on a victim queue after it.
	MTTR time.Duration `json:"mttr"`
	// Sent and Delivered count successful sends and deliveries across
	// all queues; SendErrors counts sends the outage rejected.
	Sent       int64 `json:"sent"`
	SendErrors int64 `json:"send_errors"`
	Delivered  int64 `json:"delivered"`
	// Violations counts safety-property violations (must be 0: a
	// semisynchronous replica covers everything that was ever acked).
	Violations int `json:"violations"`
	// Passed reports full conformance.
	Passed bool `json:"passed"`
	// QoS is the verdict on FailoverContract: MTTR/unavailability on the
	// victim queue, a throughput floor and a rejection ceiling overall.
	QoS *qos.Report `json:"qos,omitempty"`
	// ReplicaEvents is the manager's promotion/degrade event log.
	ReplicaEvents []string `json:"replica_events,omitempty"`
}

// Failover runs the replicated-failover experiment: three nodes, steady
// persistent load on six queues, one primary killed mid-run and never
// restarted. Every safety property must hold straight through — acked
// messages survive on the promoted follower, unreplicated in-flight
// sends were never acked so their loss is invisible, and duplicates
// appear only as flagged redeliveries.
func Failover(scale float64) (*FailoverResult, error) {
	const (
		nodes  = 3
		queues = 6
	)
	hbEvery := 10 * time.Millisecond
	hbMisses := 3
	m, err := replica.NewLocal(nodes, replica.Options{
		Seed:            1,
		HeartbeatEvery:  hbEvery,
		HeartbeatMisses: hbMisses,
	})
	if err != nil {
		return nil, err
	}
	defer m.Close()
	c := m.Cluster()

	// The victim is whichever node owns the first queue; its other
	// queues ride the same failover. Placement is seed-stable, so the
	// split is too.
	victim := c.QueueNode("fo.q0")
	var victimQueues []string
	cfg := harness.Config{
		Name:     "failover",
		Warmup:   20 * time.Millisecond,
		Run:      scaleDur(600*time.Millisecond, scale),
		Warmdown: scaleDur(400*time.Millisecond, 1),
		Seed:     1,
	}
	for i := 0; i < queues; i++ {
		name := fmt.Sprintf("fo.q%d", i)
		if c.QueueNode(name) == victim {
			victimQueues = append(victimQueues, "queue:"+name)
		}
		cfg.Producers = append(cfg.Producers, harness.ProducerConfig{
			ID: fmt.Sprintf("p%d", i), Destination: jms.Queue(name), Rate: 250, BodySize: 64,
		})
		cfg.Consumers = append(cfg.Consumers, harness.ConsumerConfig{
			ID: fmt.Sprintf("c%d", i), Destination: jms.Queue(name),
		})
	}
	killAt := cfg.Warmup + cfg.Run/3
	cfg.Faults = []harness.FaultEvent{{At: killAt, Node: victim, NoRestart: true}}

	tr, err := harness.NewRunner(c, nil).Run(cfg)
	if err != nil {
		return nil, err
	}
	report, err := model.Check(tr, model.DefaultConfig())
	if err != nil {
		return nil, err
	}

	res := &FailoverResult{
		Nodes:           nodes,
		Queues:          queues,
		VictimNode:      c.NodeName(victim),
		VictimQueues:    victimQueues,
		KillAt:          killAt,
		DetectionBudget: hbEvery * time.Duration(hbMisses),
		Promotions:      m.Promotions(),
		Violations:      len(report.Violations()),
		Passed:          report.OK(),
		QoS:             qosGate(FailoverContract(), tr),
		ReplicaEvents:   m.Events(),
	}

	onVictim := func(dest string) bool {
		for _, q := range victimQueues {
			if dest == q {
				return true
			}
		}
		return false
	}
	var crashTime, lastSendBefore, firstSendAfter, firstDeliverAfter time.Time
	for i := range tr.Events {
		ev := &tr.Events[i]
		switch ev.Type {
		case trace.EventCrash:
			if crashTime.IsZero() {
				crashTime = ev.Time
			}
		case trace.EventSendEnd:
			if ev.Err != "" {
				res.SendErrors++
				continue
			}
			res.Sent++
			if !onVictim(ev.Dest) {
				continue
			}
			if crashTime.IsZero() {
				lastSendBefore = ev.Time
			} else if firstSendAfter.IsZero() {
				firstSendAfter = ev.Time
			}
		case trace.EventDeliver:
			res.Delivered++
			if !crashTime.IsZero() && firstDeliverAfter.IsZero() && onVictim(ev.Dest) {
				firstDeliverAfter = ev.Time
			}
		}
	}
	if !lastSendBefore.IsZero() && !firstSendAfter.IsZero() {
		res.UnavailableWindow = firstSendAfter.Sub(lastSendBefore)
	}
	if !crashTime.IsZero() && !firstDeliverAfter.IsZero() {
		res.MTTR = firstDeliverAfter.Sub(crashTime)
	}
	return res, nil
}

// FormatFailover renders the failover experiment result.
func FormatFailover(r *FailoverResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Replicated failover: %d nodes, %d queues, victim %s owning %d queue(s), killed at %v (never restarted)\n",
		r.Nodes, r.Queues, r.VictimNode, len(r.VictimQueues), r.KillAt.Round(time.Millisecond))
	fmt.Fprintf(&b, "%-22s %12s\n", "Measure", "Value")
	fmt.Fprintf(&b, "%-22s %12v\n", "Detection budget", r.DetectionBudget)
	fmt.Fprintf(&b, "%-22s %12d\n", "Promotions", r.Promotions)
	fmt.Fprintf(&b, "%-22s %12v\n", "Unavailable window", r.UnavailableWindow.Round(100*time.Microsecond))
	fmt.Fprintf(&b, "%-22s %12v\n", "MTTR (first delivery)", r.MTTR.Round(100*time.Microsecond))
	fmt.Fprintf(&b, "%-22s %12d\n", "Sent ok", r.Sent)
	fmt.Fprintf(&b, "%-22s %12d\n", "Send errors", r.SendErrors)
	fmt.Fprintf(&b, "%-22s %12d\n", "Delivered", r.Delivered)
	fmt.Fprintf(&b, "%-22s %12d\n", "Violations", r.Violations)
	fmt.Fprintf(&b, "%-22s %12t\n", "Passed", r.Passed)
	for _, ev := range r.ReplicaEvents {
		fmt.Fprintf(&b, "  replica: %s\n", ev)
	}
	return b.String()
}
