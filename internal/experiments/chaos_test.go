package experiments

import (
	"testing"
	"time"

	"jmsharness/internal/chaos"
)

// TestChaosPartitionAndResetConformance is the acceptance bar for the
// chaos layer: the conformance workload runs through the fault proxy
// with a forced connection reset followed by a mid-run partition that
// heals, and every safety property must still pass. The reconnecting
// clients, send dedup tokens, and the Redelivered exemption are what
// make this hold.
func TestChaosPartitionAndResetConformance(t *testing.T) {
	run := 400 * time.Millisecond
	profile := chaosProfile{
		name: "partition+reset",
		schedule: func(run time.Duration) []chaos.Fault {
			return []chaos.Fault{
				{At: run / 4, Kind: chaos.FaultReset},
				{At: run / 2, Kind: chaos.FaultPartition, Dir: chaos.Both, Duration: run / 5},
			}
		},
	}
	row, err := runChaosProfile(profile, run, 7)
	if err != nil {
		t.Fatal(err)
	}
	if !row.Passed {
		t.Fatalf("conformance through partition+reset failed with %d violations", row.Violations)
	}
	if row.Reconnects < 1 {
		t.Errorf("Reconnects = %d, want >= 1 (the reset must actually bite)", row.Reconnects)
	}
	if len(row.FaultEvents) < 3 {
		t.Errorf("fault events = %v, want reset + partition + heal", row.FaultEvents)
	}
	if row.Sent == 0 || row.Delivered < row.Sent {
		t.Errorf("sent=%d delivered=%d: committed sends must all be delivered", row.Sent, row.Delivered)
	}
}
