package experiments

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"jmsharness/internal/broker"
	"jmsharness/internal/jms"
	"jmsharness/internal/obs"
	"jmsharness/internal/qos"
	"jmsharness/internal/store"
	"jmsharness/internal/wire"
)

// The saturation experiment measures how fast the provider goes when
// nothing holds it back: unthrottled producers and consumers hammer a
// set of disjoint queues ("shards") with no performance profile, no
// pacing and no harness in the path. It is the capacity curve the
// paper's throughput analysis presumes — MoCheQoS-style quantitative
// bounds only mean something against a system that can saturate the
// hardware — and the regression guard for the hot-path work: broker
// lock sharding shows up as msgs/s scaling with the shard count, WAL
// group commit as persistent-send throughput scaling with the number
// of concurrent producers (fsyncs amortised across a batch).

// SaturationOptions configures a saturation sweep.
type SaturationOptions struct {
	// Stacks selects the provider stacks to measure: "broker" (in-memory
	// store, non-persistent sends), "wal" (WAL-backed stable store with
	// Sync enabled, persistent sends), "wire" (TCP protocol bridge over
	// the in-memory broker), "walshard" (segmented WAL with one shard
	// per queue, persistent windowed async sends), "wirepipe" (TCP
	// bridge over the segmented-WAL broker with credit-windowed
	// pipelined producers — the full persistent hot path with every
	// per-message round trip removed).
	Stacks []string
	// Shards are the shard counts to sweep; each shard is one distinct
	// queue with its own producers and consumers.
	Shards []int
	// ProducersPerShard and ConsumersPerShard size the per-queue worker
	// pools.
	ProducersPerShard int
	ConsumersPerShard int
	// BodySize is the message body size in bytes.
	BodySize int
	// Run is the measured window per point; a Run/4 warmup precedes it.
	Run time.Duration
	// Dir is the scratch directory for WAL files ("" for a temp dir).
	Dir string
	// Spans, when non-nil, traces every message end to end: brokers
	// record enqueue lifecycle spans, the wire stack's client and
	// server record send-RPC and server-receive hops. Tee a JSONLSink
	// into it to export the run for per-hop analysis.
	Spans obs.SpanRecorder
}

// SaturationSweepOptions returns the default saturation sweep.
func SaturationSweepOptions(scale float64) SaturationOptions {
	return SaturationOptions{
		Stacks:            []string{"broker", "wal", "wire", "walshard", "wirepipe"},
		Shards:            []int{1, 2, 4},
		ProducersPerShard: 4,
		ConsumersPerShard: 4,
		BodySize:          256,
		Run:               scaleDur(1200*time.Millisecond, scale),
	}
}

// SaturationPoint is one measured stack × shard-count point.
type SaturationPoint struct {
	Stack      string `json:"stack"`
	Shards     int    `json:"shards"`
	Producers  int    `json:"producers"`
	Consumers  int    `json:"consumers"`
	Persistent bool   `json:"persistent"`
	// ProducedMsgsPerSec and ConsumedMsgsPerSec are the measured-window
	// throughputs; consumed is the capacity figure (what actually made
	// it through the provider end to end).
	ProducedMsgsPerSec float64 `json:"produced_msgs_per_sec"`
	ConsumedMsgsPerSec float64 `json:"consumed_msgs_per_sec"`
	// Delay percentiles are send-timestamp→receive latencies, sampled.
	DelayP50 time.Duration `json:"delay_p50_ns"`
	DelayP95 time.Duration `json:"delay_p95_ns"`
	DelayP99 time.Duration `json:"delay_p99_ns"`
	// Commit-batch statistics (wal stack only): how many records each
	// group commit flushed. Mean ≈ 1 means no batching — every record
	// paid its own fsync.
	CommitBatches   int64   `json:"commit_batches,omitempty"`
	CommitBatchMean float64 `json:"commit_batch_mean,omitempty"`
	CommitBatchP95  int64   `json:"commit_batch_p95,omitempty"`
	CommitBatchMax  int64   `json:"commit_batch_max,omitempty"`
	// QoS is the verdict on SaturationContract(Stack), judged against
	// observations synthesized from this point's own counters.
	QoS *qos.Report `json:"qos,omitempty"`
}

// SaturationSweep measures every requested stack at every shard count,
// one fresh provider per point.
func SaturationSweep(opts SaturationOptions) ([]SaturationPoint, error) {
	if opts.ProducersPerShard <= 0 {
		opts.ProducersPerShard = 4
	}
	if opts.ConsumersPerShard <= 0 {
		opts.ConsumersPerShard = 4
	}
	if opts.BodySize <= 0 {
		opts.BodySize = 256
	}
	if opts.Run <= 0 {
		opts.Run = time.Second
	}
	dir := opts.Dir
	if dir == "" {
		var err error
		dir, err = os.MkdirTemp("", "jms-saturation")
		if err != nil {
			return nil, fmt.Errorf("experiments: saturation scratch dir: %w", err)
		}
		defer os.RemoveAll(dir)
	}
	var points []SaturationPoint
	for _, stack := range opts.Stacks {
		for _, shards := range opts.Shards {
			p, err := saturationPoint(stack, shards, dir, opts)
			if err != nil {
				return nil, fmt.Errorf("experiments: saturation %s/%d: %w", stack, shards, err)
			}
			points = append(points, p)
		}
	}
	return points, nil
}

// satStack is one provider stack under saturation test.
type satStack struct {
	factory    jms.ConnectionFactory
	persistent bool
	async      bool          // producers use windowed async sends
	walReg     *obs.Registry // nil unless the stack has a WAL
	cleanup    func()
}

// satAsyncWindow is how many uncompleted sends each async-stack
// producer keeps in flight before draining its completions. On the
// wirepipe stack the wire client's own credit window (satPipeWindow)
// is the real bound; this one just caps the local completion buffer.
const satAsyncWindow = 128

// satPipeWindow is the credit window requested by the wirepipe stack's
// pipelined wire clients.
const satPipeWindow = 256

// buildSatStack constructs the named stack; spans (possibly nil)
// traces it end to end.
func buildSatStack(stack string, shards int, dir string, seq int, spans obs.SpanRecorder) (*satStack, error) {
	switch stack {
	case "broker":
		b, err := broker.New(broker.Options{Name: fmt.Sprintf("sat-broker-%d", seq), Spans: spans})
		if err != nil {
			return nil, err
		}
		return &satStack{factory: b, cleanup: func() { _ = b.Close() }}, nil
	case "wal":
		reg := obs.NewRegistry()
		path := filepath.Join(dir, fmt.Sprintf("sat-%d-%d.wal", seq, shards))
		w, err := store.OpenWAL(path, walSaturationOptions(reg))
		if err != nil {
			return nil, err
		}
		b, err := broker.New(broker.Options{Name: fmt.Sprintf("sat-wal-%d", seq), Stable: w, Spans: spans})
		if err != nil {
			_ = w.Close()
			return nil, err
		}
		return &satStack{
			factory:    b,
			persistent: true,
			walReg:     reg,
			cleanup: func() {
				_ = b.Close()
				_ = w.Close()
				_ = os.Remove(path)
			},
		}, nil
	case "walshard":
		reg := obs.NewRegistry()
		root := filepath.Join(dir, fmt.Sprintf("sat-shard-%d-%d", seq, shards))
		if err := os.MkdirAll(root, 0o755); err != nil {
			return nil, err
		}
		sw, err := store.OpenSharded(filepath.Join(root, "log.wal"), shards, walSaturationOptions(reg))
		if err != nil {
			return nil, err
		}
		b, err := broker.New(broker.Options{Name: fmt.Sprintf("sat-walshard-%d", seq), Stable: sw, Spans: spans})
		if err != nil {
			_ = sw.Close()
			return nil, err
		}
		return &satStack{
			factory:    b,
			persistent: true,
			async:      true,
			walReg:     reg,
			cleanup: func() {
				_ = b.Close()
				_ = sw.Close()
				_ = os.RemoveAll(root)
			},
		}, nil
	case "wirepipe":
		reg := obs.NewRegistry()
		root := filepath.Join(dir, fmt.Sprintf("sat-pipe-%d-%d", seq, shards))
		if err := os.MkdirAll(root, 0o755); err != nil {
			return nil, err
		}
		sw, err := store.OpenSharded(filepath.Join(root, "log.wal"), shards, walSaturationOptions(reg))
		if err != nil {
			return nil, err
		}
		b, err := broker.New(broker.Options{Name: fmt.Sprintf("sat-wirepipe-%d", seq), Stable: sw, Spans: spans})
		if err != nil {
			_ = sw.Close()
			return nil, err
		}
		srv, err := wire.NewServer(b, "127.0.0.1:0")
		if err != nil {
			_ = b.Close()
			_ = sw.Close()
			return nil, err
		}
		f := wire.NewFactory(srv.Addr()).WithPipelining(satPipeWindow)
		if spans != nil {
			srv.WithSpans(spans)
			f.WithSpans(spans)
		}
		srv.Start()
		return &satStack{
			factory:    f,
			persistent: true,
			async:      true,
			walReg:     reg,
			cleanup: func() {
				_ = srv.Close()
				_ = b.Close()
				_ = sw.Close()
				_ = os.RemoveAll(root)
			},
		}, nil
	case "wire":
		b, err := broker.New(broker.Options{Name: fmt.Sprintf("sat-wire-%d", seq), Spans: spans})
		if err != nil {
			return nil, err
		}
		srv, err := wire.NewServer(b, "127.0.0.1:0")
		if err != nil {
			_ = b.Close()
			return nil, err
		}
		f := wire.NewFactory(srv.Addr())
		if spans != nil {
			srv.WithSpans(spans)
			f.WithSpans(spans)
		}
		srv.Start()
		return &satStack{
			factory: f,
			cleanup: func() {
				_ = srv.Close()
				_ = b.Close()
			},
		}, nil
	default:
		return nil, fmt.Errorf("unknown stack %q", stack)
	}
}

// walSaturationOptions returns the WAL configuration for the saturation
// stack: full fsync durability, instruments (the group-commit batch
// histogram) homed in reg.
func walSaturationOptions(reg *obs.Registry) store.WALOptions {
	return store.WALOptions{Sync: true, Metrics: reg}
}

var satSeq atomic.Int64

// delaySampleEvery subsamples receive-latency observations so a
// multi-million-message run does not drown in bookkeeping.
const delaySampleEvery = 8

// saturationPoint measures one stack at one shard count.
func saturationPoint(stack string, shards int, dir string, opts SaturationOptions) (SaturationPoint, error) {
	st, err := buildSatStack(stack, shards, dir, int(satSeq.Add(1)), opts.Spans)
	if err != nil {
		return SaturationPoint{}, err
	}
	defer st.cleanup()

	mode := jms.NonPersistent
	if st.persistent {
		mode = jms.Persistent
	}
	sendOpts := jms.DefaultSendOptions()
	sendOpts.Mode = mode
	payload := make([]byte, opts.BodySize)

	var (
		produced  atomic.Int64
		consumed  atomic.Int64
		measuring atomic.Bool
		stop      atomic.Bool
		workerErr atomic.Value // first error, if any

		delayMu sync.Mutex
		delays  []time.Duration
	)
	fail := func(err error) {
		if err != nil {
			workerErr.CompareAndSwap(nil, err)
			stop.Store(true)
		}
	}

	var wg sync.WaitGroup
	start := make(chan struct{})
	type closer interface{ Close() error }
	var conns []closer

	// One connection per worker keeps the workers independent all the
	// way down the stack (distinct TCP connections on the wire stack).
	newSession := func() (jms.Session, error) {
		conn, err := st.factory.CreateConnection()
		if err != nil {
			return nil, err
		}
		conns = append(conns, conn)
		if err := conn.Start(); err != nil {
			return nil, err
		}
		return conn.CreateSession(false, jms.AckAuto)
	}

	for shard := 0; shard < shards; shard++ {
		queue := jms.Queue(fmt.Sprintf("sat-%d", shard))
		for i := 0; i < opts.ProducersPerShard; i++ {
			sess, err := newSession()
			if err != nil {
				stop.Store(true)
				close(start)
				wg.Wait()
				return SaturationPoint{}, err
			}
			prod, err := sess.CreateProducer(queue)
			if err != nil {
				stop.Store(true)
				close(start)
				wg.Wait()
				return SaturationPoint{}, err
			}
			ap, asyncOK := prod.(jms.AsyncProducer)
			wg.Add(1)
			if st.async && asyncOK {
				go func() {
					defer wg.Done()
					<-start
					// Windowed async sends: keep a window of uncompleted
					// sends in flight, drain completions in batches. Each
					// send gets a fresh message — completions stamp the
					// message asynchronously, so in-flight sends must not
					// share one.
					pending := make([]jms.Completion, 0, satAsyncWindow)
					drain := func() bool {
						for _, c := range pending {
							if err := c(); err != nil {
								fail(err)
								return false
							}
							if measuring.Load() {
								produced.Add(1)
							}
						}
						pending = pending[:0]
						return true
					}
					for !stop.Load() {
						comp, err := ap.SendAsync(jms.NewBytesMessage(payload), sendOpts)
						if err != nil {
							fail(err)
							return
						}
						pending = append(pending, comp)
						if len(pending) == satAsyncWindow && !drain() {
							return
						}
					}
					drain()
				}()
			} else {
				go func() {
					defer wg.Done()
					<-start
					msg := jms.NewBytesMessage(payload)
					for !stop.Load() {
						if err := prod.Send(msg, sendOpts); err != nil {
							fail(err)
							return
						}
						if measuring.Load() {
							produced.Add(1)
						}
					}
				}()
			}
		}
		for i := 0; i < opts.ConsumersPerShard; i++ {
			sess, err := newSession()
			if err != nil {
				stop.Store(true)
				close(start)
				wg.Wait()
				return SaturationPoint{}, err
			}
			cons, err := sess.CreateConsumer(queue)
			if err != nil {
				stop.Store(true)
				close(start)
				wg.Wait()
				return SaturationPoint{}, err
			}
			wg.Add(1)
			go func() {
				defer wg.Done()
				<-start
				var n int64
				var local []time.Duration
				for !stop.Load() {
					msg, err := cons.Receive(50 * time.Millisecond)
					if err != nil {
						fail(err)
						break
					}
					if msg == nil {
						continue
					}
					if !measuring.Load() {
						continue
					}
					consumed.Add(1)
					if n++; n%delaySampleEvery == 0 {
						local = append(local, time.Since(msg.Timestamp))
					}
				}
				delayMu.Lock()
				delays = append(delays, local...)
				delayMu.Unlock()
			}()
		}
	}

	close(start)
	time.Sleep(opts.Run / 4) // warmup: let the pipeline fill
	measureStart := time.Now()
	measuring.Store(true)
	time.Sleep(opts.Run)
	measuring.Store(false)
	elapsed := time.Since(measureStart)
	stop.Store(true)
	wg.Wait()
	for _, c := range conns {
		_ = c.Close()
	}
	if err, ok := workerErr.Load().(error); ok && err != nil {
		return SaturationPoint{}, err
	}

	delayMu.Lock()
	sort.Slice(delays, func(i, j int) bool { return delays[i] < delays[j] })
	quant := func(q float64) time.Duration {
		if len(delays) == 0 {
			return 0
		}
		i := int(q * float64(len(delays)-1))
		return delays[i]
	}
	obsSet := saturationObservations(elapsed, int(produced.Load()), int(consumed.Load()), delays)
	point := SaturationPoint{
		Stack:              stack,
		Shards:             shards,
		Producers:          shards * opts.ProducersPerShard,
		Consumers:          shards * opts.ConsumersPerShard,
		Persistent:         st.persistent,
		ProducedMsgsPerSec: float64(produced.Load()) / elapsed.Seconds(),
		ConsumedMsgsPerSec: float64(consumed.Load()) / elapsed.Seconds(),
		DelayP50:           quant(0.50),
		DelayP95:           quant(0.95),
		DelayP99:           quant(0.99),
		QoS:                SaturationContract(stack).WithSlack(qos.SlackFromEnv()).Evaluate(obsSet),
	}
	delayMu.Unlock()

	if st.walReg != nil {
		snap := st.walReg.Histogram("wal.commit_batch", nil).Snapshot()
		point.CommitBatches = snap.Count
		point.CommitBatchMean = snap.Mean
		point.CommitBatchP95 = snap.P95
		point.CommitBatchMax = snap.Max
	}
	return point, nil
}

// SaturationBaseline is the pre-overhaul capacity, measured with this
// same experiment at the commit before the hot-path work (single global
// broker mutex, O(n) mailbox pops, one fsync per WAL record, unpooled
// wire codec) on the development container. It is embedded so every
// BENCH report carries the before/after comparison the overhaul is
// judged against. Note the pathological in-memory numbers: unthrottled
// producers buried the consumers because every mailbox pop paid a
// memmove over the whole backlog.
var SaturationBaseline = []SaturationPoint{
	{Stack: "broker", Shards: 1, Producers: 4, Consumers: 4, ProducedMsgsPerSec: 189404, ConsumedMsgsPerSec: 886, DelayP50: 696229 * time.Microsecond, DelayP95: 1273741 * time.Microsecond, DelayP99: 1325090 * time.Microsecond},
	{Stack: "broker", Shards: 2, Producers: 8, Consumers: 8, ProducedMsgsPerSec: 63224, ConsumedMsgsPerSec: 7401, DelayP50: 600965 * time.Microsecond, DelayP95: 1293282 * time.Microsecond, DelayP99: 1351664 * time.Microsecond},
	{Stack: "broker", Shards: 4, Producers: 16, Consumers: 16, ProducedMsgsPerSec: 321744, ConsumedMsgsPerSec: 2164, DelayP50: 683498 * time.Microsecond, DelayP95: 1256978 * time.Microsecond, DelayP99: 1336868 * time.Microsecond},
	{Stack: "wal", Shards: 1, Producers: 4, Consumers: 4, Persistent: true, ProducedMsgsPerSec: 3079, ConsumedMsgsPerSec: 1777, DelayP50: 385242 * time.Microsecond, DelayP95: 667395 * time.Microsecond, DelayP99: 679479 * time.Microsecond},
	{Stack: "wal", Shards: 2, Producers: 8, Consumers: 8, Persistent: true, ProducedMsgsPerSec: 3373, ConsumedMsgsPerSec: 2275, DelayP50: 269910 * time.Microsecond, DelayP95: 491521 * time.Microsecond, DelayP99: 535543 * time.Microsecond},
	{Stack: "wal", Shards: 4, Producers: 16, Consumers: 16, Persistent: true, ProducedMsgsPerSec: 3387, ConsumedMsgsPerSec: 1769, DelayP50: 423801 * time.Microsecond, DelayP95: 834591 * time.Microsecond, DelayP99: 949939 * time.Microsecond},
	{Stack: "wire", Shards: 1, Producers: 4, Consumers: 4, ProducedMsgsPerSec: 11949, ConsumedMsgsPerSec: 11950, DelayP50: 426 * time.Microsecond, DelayP95: 861 * time.Microsecond, DelayP99: 2483 * time.Microsecond},
	{Stack: "wire", Shards: 2, Producers: 8, Consumers: 8, ProducedMsgsPerSec: 13573, ConsumedMsgsPerSec: 13567, DelayP50: 847 * time.Microsecond, DelayP95: 2230 * time.Microsecond, DelayP99: 3927 * time.Microsecond},
	{Stack: "wire", Shards: 4, Producers: 16, Consumers: 16, ProducedMsgsPerSec: 15042, ConsumedMsgsPerSec: 15018, DelayP50: 1032 * time.Microsecond, DelayP95: 3516 * time.Microsecond, DelayP99: 5678 * time.Microsecond},
}

// FormatSaturationTable renders a saturation sweep.
func FormatSaturationTable(opts SaturationOptions, points []SaturationPoint) string {
	var b strings.Builder
	fmt.Fprintf(&b, "unthrottled capacity: %d producers + %d consumers per shard, %dB bodies, %v window\n",
		opts.ProducersPerShard, opts.ConsumersPerShard, opts.BodySize, opts.Run)
	fmt.Fprintf(&b, "%-8s %7s %12s %12s %10s %10s %10s %10s\n",
		"stack", "shards", "prod/s", "cons/s", "p50", "p95", "p99", "batch")
	for _, p := range points {
		batch := "-"
		if p.CommitBatches > 0 {
			batch = fmt.Sprintf("%.1f", p.CommitBatchMean)
		}
		fmt.Fprintf(&b, "%-8s %7d %12.0f %12.0f %10v %10v %10v %10s\n",
			p.Stack, p.Shards, p.ProducedMsgsPerSec, p.ConsumedMsgsPerSec,
			p.DelayP50.Round(time.Microsecond), p.DelayP95.Round(time.Microsecond),
			p.DelayP99.Round(time.Microsecond), batch)
	}
	return b.String()
}
