package analysis

import (
	"math"
	"testing"
	"time"

	"jmsharness/internal/jms"
	"jmsharness/internal/trace"
)

// buildTrace creates a trace with phase markers: warmup [0,1s), run
// [1s,3s), warmdown [3s,4s). During the run, p1 sends 20 msgs (one per
// 100ms, 500 bytes each) delivered to c1 with 10ms delay, and p2 sends
// 10 msgs delivered with 30ms delay to c2.
func buildTrace() *trace.Trace {
	epoch := time.Unix(2000, 0)
	at := func(ms int) time.Time { return epoch.Add(time.Duration(ms) * time.Millisecond) }
	var events []trace.Event
	seq := int64(0)
	add := func(ev trace.Event) {
		seq++
		ev.Node = "n"
		ev.Seq = seq
		events = append(events, ev)
	}
	phase := func(name string, ms int) {
		add(trace.Event{Type: trace.EventPhase, Detail: name, Time: at(ms)})
	}
	send := func(p string, n int, ms, bytes int) string {
		uid := trace.MessageUID(p, int64(n))
		add(trace.Event{Type: trace.EventSendStart, Time: at(ms), Producer: p,
			MsgUID: uid, MsgSeq: int64(n), Dest: "queue:q", BodyBytes: bytes,
			Mode: jms.Persistent, Priority: 4})
		add(trace.Event{Type: trace.EventSendEnd, Time: at(ms + 1), Producer: p,
			MsgUID: uid, MsgSeq: int64(n), Dest: "queue:q", BodyBytes: bytes,
			Mode: jms.Persistent, Priority: 4})
		return uid
	}
	deliver := func(c, uid string, ms, bytes int) {
		add(trace.Event{Type: trace.EventDeliver, Time: at(ms), Consumer: c,
			MsgUID: uid, Endpoint: "queue:q", Dest: "queue:q", BodyBytes: bytes,
			Mode: jms.Persistent, Priority: 4})
	}

	phase(trace.PhaseWarmup, 0)
	// Warm-up traffic must not be measured.
	uid := send("p1", 1, 500, 500)
	deliver("c1", uid, 510, 500)

	phase(trace.PhaseRun, 1000)
	n := 1
	for i := 0; i < 20; i++ {
		n++
		uid := send("p1", n, 1000+100*i, 500)
		deliver("c1", uid, 1000+100*i+10, 500)
	}
	for i := 0; i < 10; i++ {
		n++
		uid := send("p2", n, 1050+100*i, 200)
		deliver("c2", uid, 1050+100*i+30, 200)
	}
	phase(trace.PhaseWarmdown, 3000)
	phase(trace.PhaseDone, 4000)
	return trace.Merge([][]trace.Event{events}, nil)
}

func TestAnalyzeThroughput(t *testing.T) {
	m, err := Analyze(buildTrace(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if m.Window() != 2*time.Second {
		t.Errorf("window = %v", m.Window())
	}
	if m.Producer.Count != 30 {
		t.Errorf("producer count = %d, want 30 (warm-up excluded)", m.Producer.Count)
	}
	if got := m.Producer.PerSecond; math.Abs(got-15) > 0.01 {
		t.Errorf("producer rate = %v, want 15/s", got)
	}
	wantBytes := float64(20*500+10*200) / 2
	if got := m.Producer.BytesPerSecond; math.Abs(got-wantBytes) > 0.5 {
		t.Errorf("producer bytes/s = %v, want %v", got, wantBytes)
	}
	if m.Consumer.Count != 30 {
		t.Errorf("consumer count = %d", m.Consumer.Count)
	}
	if len(m.PerProducer) != 2 || m.PerProducer["p1"].Count != 20 || m.PerProducer["p2"].Count != 10 {
		t.Errorf("per-producer = %v", m.PerProducer)
	}
	if len(m.PerConsumer) != 2 {
		t.Errorf("per-consumer = %v", m.PerConsumer)
	}
}

func TestAnalyzeDelay(t *testing.T) {
	m, err := Analyze(buildTrace(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if m.Delay.N != 30 {
		t.Errorf("delay n = %d", m.Delay.N)
	}
	// p1 delays ~9ms (10ms minus the 1ms send-call duration offset from
	// send-start), p2 ~29ms. Means: (20*9 + 10*29)/30 ≈ 15.67ms... delay
	// is measured from send-start, so exactly 10ms and 30ms.
	if m.Delay.Min != 10*time.Millisecond {
		t.Errorf("min delay = %v", m.Delay.Min)
	}
	if m.Delay.Max != 30*time.Millisecond {
		t.Errorf("max delay = %v", m.Delay.Max)
	}
	wantMean := time.Duration((20*10 + 10*30) / 30 * float64(time.Millisecond))
	if diff := m.Delay.Mean - wantMean; diff > time.Millisecond || diff < -time.Millisecond {
		t.Errorf("mean delay = %v, want ~%v", m.Delay.Mean, wantMean)
	}
}

func TestAnalyzeFairness(t *testing.T) {
	m, err := Analyze(buildTrace(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if m.Fairness.PerProducerMean["p1"] != 10*time.Millisecond {
		t.Errorf("p1 mean = %v", m.Fairness.PerProducerMean["p1"])
	}
	if m.Fairness.PerProducerMean["p2"] != 30*time.Millisecond {
		t.Errorf("p2 mean = %v", m.Fairness.PerProducerMean["p2"])
	}
	// stddev of {10ms, 30ms} = 14.14ms (sample, n-1).
	want := time.Duration(math.Sqrt(2) * 10 * float64(time.Millisecond))
	if diff := m.Fairness.ProducerUnfairness - want; diff > time.Millisecond || diff < -time.Millisecond {
		t.Errorf("producer unfairness = %v, want ~%v", m.Fairness.ProducerUnfairness, want)
	}
	if m.Fairness.ConsumerUnfairness <= 0 {
		t.Error("consumer unfairness should be positive")
	}
}

func TestAnalyzeHistogram(t *testing.T) {
	m, err := Analyze(buildTrace(), Options{HistogramBuckets: 10, HistogramMaxSeconds: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	if m.DelayHistogram == nil {
		t.Fatal("no histogram")
	}
	if m.DelayHistogram.Total() != 30 {
		t.Errorf("histogram total = %d", m.DelayHistogram.Total())
	}
	// CDF at 20ms should cover the 20 fast messages only.
	if cdf := m.DelayHistogram.CDF(0.020); math.Abs(cdf-2.0/3) > 0.05 {
		t.Errorf("CDF(20ms) = %v", cdf)
	}
}

func TestAnalyzeWholeTrace(t *testing.T) {
	m, err := Analyze(buildTrace(), Options{WholeTrace: true})
	if err != nil {
		t.Fatal(err)
	}
	if m.Producer.Count != 31 {
		t.Errorf("whole-trace producer count = %d, want 31 (warm-up included)", m.Producer.Count)
	}
}

func TestAnalyzeErrors(t *testing.T) {
	if _, err := Analyze(&trace.Trace{}, Options{}); err == nil {
		t.Error("empty trace accepted")
	}
}

func TestAnalyzeNoPhaseMarkers(t *testing.T) {
	epoch := time.Unix(0, 0)
	events := []trace.Event{
		{Node: "n", Seq: 1, Time: epoch, Type: trace.EventSendStart, MsgUID: "p/1", Producer: "p", BodyBytes: 10},
		{Node: "n", Seq: 2, Time: epoch.Add(time.Millisecond), Type: trace.EventSendEnd, MsgUID: "p/1", Producer: "p", BodyBytes: 10},
		{Node: "n", Seq: 3, Time: epoch.Add(time.Second), Type: trace.EventDeliver, MsgUID: "p/1", Consumer: "c", Endpoint: "queue:q", BodyBytes: 10},
	}
	m, err := Analyze(trace.Merge([][]trace.Event{events}, nil), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if m.Producer.Count != 1 || m.Consumer.Count != 1 {
		t.Errorf("counts = %d/%d", m.Producer.Count, m.Consumer.Count)
	}
}

func TestMeasuresString(t *testing.T) {
	m, err := Analyze(buildTrace(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if m.String() == "" {
		t.Error("empty report")
	}
}

// TestStreamAggregatorMatchesBatch cross-checks the §4.1 streaming path
// against the batch analyzer on the same trace.
func TestStreamAggregatorMatchesBatch(t *testing.T) {
	tr := buildTrace()
	batch, err := Analyze(tr, Options{})
	if err != nil {
		t.Fatal(err)
	}
	agg := NewStreamAggregator()
	for _, ev := range tr.Events {
		agg.Observe(ev)
	}
	streamed := agg.Finalize()

	if streamed.Producer.Count != batch.Producer.Count {
		t.Errorf("producer count: stream %d, batch %d", streamed.Producer.Count, batch.Producer.Count)
	}
	if streamed.Consumer.Count != batch.Consumer.Count {
		t.Errorf("consumer count: stream %d, batch %d", streamed.Consumer.Count, batch.Consumer.Count)
	}
	if math.Abs(streamed.Producer.PerSecond-batch.Producer.PerSecond) > 0.01 {
		t.Errorf("producer rate: stream %v, batch %v", streamed.Producer.PerSecond, batch.Producer.PerSecond)
	}
	if streamed.Delay.N != batch.Delay.N {
		t.Errorf("delay n: stream %d, batch %d", streamed.Delay.N, batch.Delay.N)
	}
	if d := streamed.Delay.Mean - batch.Delay.Mean; d > time.Microsecond || d < -time.Microsecond {
		t.Errorf("delay mean: stream %v, batch %v", streamed.Delay.Mean, batch.Delay.Mean)
	}
	if d := streamed.Fairness.ProducerUnfairness - batch.Fairness.ProducerUnfairness; d > time.Microsecond || d < -time.Microsecond {
		t.Errorf("unfairness: stream %v, batch %v",
			streamed.Fairness.ProducerUnfairness, batch.Fairness.ProducerUnfairness)
	}
	if streamed.PerProducer["p1"].Count != batch.PerProducer["p1"].Count {
		t.Error("per-producer counts disagree")
	}
}

func TestStreamAggregatorFailedSend(t *testing.T) {
	agg := NewStreamAggregator()
	epoch := time.Unix(0, 0)
	agg.Observe(trace.Event{Type: trace.EventSendStart, MsgUID: "p/1", Producer: "p", Time: epoch})
	agg.Observe(trace.Event{Type: trace.EventSendEnd, MsgUID: "p/1", Producer: "p", Err: "boom", Time: epoch.Add(time.Millisecond)})
	m := agg.Finalize()
	if m.Producer.Count != 0 {
		t.Errorf("failed send counted: %d", m.Producer.Count)
	}
}

func TestProducerOf(t *testing.T) {
	if producerOf("p1/42") != "p1" {
		t.Error("producerOf basic")
	}
	if producerOf("weird") != "weird" {
		t.Error("producerOf fallback")
	}
	if producerOf("a/b/3") != "a/b" {
		t.Error("producerOf nested")
	}
}

func TestAnalyzeDelayPercentiles(t *testing.T) {
	m, err := Analyze(buildTrace(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	// 20 deliveries at 10ms, 10 at 30ms: p50 = 10ms, p95/p99 = 30ms.
	if m.Delay.P50 != 10*time.Millisecond {
		t.Errorf("p50 = %v", m.Delay.P50)
	}
	if m.Delay.P95 != 30*time.Millisecond || m.Delay.P99 != 30*time.Millisecond {
		t.Errorf("p95/p99 = %v/%v", m.Delay.P95, m.Delay.P99)
	}
	if m.Delay.P50 > m.Delay.P95 || m.Delay.P95 > m.Delay.P99 {
		t.Error("percentiles not monotone")
	}
}
