// Package analysis computes the paper's §3.2 performance measures from
// an execution trace. The harness tests safety properties but cannot
// test liveness from a finite trace, so "instead of testing for
// liveness, the JMS test harness measures the performances of the JMS
// implementations" — a trivial provider that never delivers passes every
// safety check but shows zero throughput here.
//
// Measures taken, following the paper:
//
//   - producer throughput: messages/second and body bytes/second;
//   - consumer throughput: messages/second and body bytes/second;
//   - message delay: time from the start of the send/publish call to the
//     start of delivery (min, max, mean, standard deviation);
//   - fairness: "the standard deviation of the per-producer or
//     per-consumer mean delay".
//
// A running test has warm-up, run and warm-down periods; performance is
// measured only against the run period (correctness applies to all
// three). Producer throughput counts sends completing in the run window;
// consumer throughput counts deliveries occurring in the run window;
// delay and fairness are computed over messages produced in the run
// window.
package analysis

import (
	"fmt"
	"strings"
	"time"

	"jmsharness/internal/stats"
	"jmsharness/internal/trace"
)

// Throughput is a message-rate measure.
type Throughput struct {
	// Count is the number of messages.
	Count int64
	// Bytes is the total body bytes.
	Bytes int64
	// PerSecond is messages per second over the measurement window.
	PerSecond float64
	// BytesPerSecond is body bytes per second.
	BytesPerSecond float64
}

// String renders the throughput.
func (t Throughput) String() string {
	return fmt.Sprintf("%.1f msgs/s (%.0f b/s, n=%d)", t.PerSecond, t.BytesPerSecond, t.Count)
}

// DelayStats summarises message delays. The percentiles are computed by
// the batch analyzer only (the streaming aggregator keeps O(1) state
// per identity and reports them as zero).
type DelayStats struct {
	N      int64
	Min    time.Duration
	Max    time.Duration
	Mean   time.Duration
	StdDev time.Duration
	P50    time.Duration
	P95    time.Duration
	P99    time.Duration
}

// String renders the delay statistics.
func (d DelayStats) String() string {
	s := fmt.Sprintf("n=%d min=%s max=%s mean=%s sd=%s", d.N, d.Min, d.Max, d.Mean, d.StdDev)
	if d.P50 > 0 {
		s += fmt.Sprintf(" p50=%s p95=%s p99=%s", d.P50, d.P95, d.P99)
	}
	return s
}

// Fairness measures provider bias across producers and consumers:
// "Unfairness is defined as the standard deviation of the per-producer
// or per-consumer mean delay."
type Fairness struct {
	// ProducerUnfairness is the stddev across per-producer mean delays.
	ProducerUnfairness time.Duration
	// ConsumerUnfairness is the stddev across per-consumer mean delays.
	ConsumerUnfairness time.Duration
	// PerProducerMean and PerConsumerMean expose the underlying means.
	PerProducerMean map[string]time.Duration
	PerConsumerMean map[string]time.Duration
}

// Measures is the full performance report for one test run.
type Measures struct {
	// Window is the measurement window (the run period when phase
	// markers are present, otherwise the whole trace).
	WindowStart time.Time
	WindowEnd   time.Time
	// Producer and Consumer are the aggregate throughputs.
	Producer Throughput
	Consumer Throughput
	// PerProducer and PerConsumer break throughput down by identity.
	PerProducer map[string]Throughput
	PerConsumer map[string]Throughput
	// Delay summarises message delays.
	Delay DelayStats
	// DelayHistogram is the empirical delay distribution in seconds,
	// input to the §5 expectation models.
	DelayHistogram *stats.Histogram
	// Fairness measures provider bias.
	Fairness Fairness
}

// Window returns the measurement window length.
func (m *Measures) Window() time.Duration { return m.WindowEnd.Sub(m.WindowStart) }

// String renders a report block.
func (m *Measures) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "window           %s\n", m.Window())
	fmt.Fprintf(&b, "producer         %s\n", m.Producer)
	fmt.Fprintf(&b, "consumer         %s\n", m.Consumer)
	fmt.Fprintf(&b, "delay            %s\n", m.Delay)
	fmt.Fprintf(&b, "unfairness       producer=%s consumer=%s\n",
		m.Fairness.ProducerUnfairness, m.Fairness.ConsumerUnfairness)
	return b.String()
}

// Options configures Analyze.
type Options struct {
	// WholeTrace measures over the entire trace even when run-phase
	// markers are present.
	WholeTrace bool
	// HistogramBuckets and HistogramMaxSeconds shape the delay
	// histogram; zero values choose 50 buckets over [0, 4×mean-ish
	// max). If no deliveries exist the histogram is nil.
	HistogramBuckets    int
	HistogramMaxSeconds float64
}

// Analyze computes the §3.2 performance measures for a merged trace.
func Analyze(tr *trace.Trace, opts Options) (*Measures, error) {
	if len(tr.Events) == 0 {
		return nil, fmt.Errorf("analysis: empty trace")
	}
	start := tr.Events[0].Time
	end := tr.Events[len(tr.Events)-1].Time
	// Without phase markers the window spans the whole trace and is
	// closed at both ends; with markers it is the half-open run period.
	halfOpen := false
	if !opts.WholeTrace {
		if s, e, ok := tr.PhaseBounds(trace.PhaseRun); ok {
			start, end = s, e
			halfOpen = true
		}
	}
	window := end.Sub(start)
	if window <= 0 {
		return nil, fmt.Errorf("analysis: empty measurement window [%v, %v]", start, end)
	}

	m := &Measures{
		WindowStart: start,
		WindowEnd:   end,
		PerProducer: map[string]Throughput{},
		PerConsumer: map[string]Throughput{},
	}

	inWindow := func(t time.Time) bool {
		if t.Before(start) {
			return false
		}
		if halfOpen {
			return t.Before(end)
		}
		return !t.After(end)
	}

	// First pass: index send starts for delay computation and determine
	// which messages were produced in the window.
	sendStart := map[string]time.Time{}
	producedInWindow := map[string]bool{}
	for i := range tr.Events {
		ev := &tr.Events[i]
		switch ev.Type {
		case trace.EventSendStart:
			sendStart[ev.MsgUID] = ev.Time
		case trace.EventSendEnd:
			if ev.Err == "" && inWindow(ev.Time) {
				producedInWindow[ev.MsgUID] = true
			}
		}
	}

	var delaySummary stats.Summary
	delaysByProducer := map[string]*stats.Summary{}
	delaysByConsumer := map[string]*stats.Summary{}
	var delays []float64

	for i := range tr.Events {
		ev := &tr.Events[i]
		switch ev.Type {
		case trace.EventSendEnd:
			if ev.Err != "" || !inWindow(ev.Time) {
				continue
			}
			agg := m.PerProducer[ev.Producer]
			agg.Count++
			agg.Bytes += int64(ev.BodyBytes)
			m.PerProducer[ev.Producer] = agg
			m.Producer.Count++
			m.Producer.Bytes += int64(ev.BodyBytes)

		case trace.EventDeliver:
			if inWindow(ev.Time) {
				agg := m.PerConsumer[ev.Consumer]
				agg.Count++
				agg.Bytes += int64(ev.BodyBytes)
				m.PerConsumer[ev.Consumer] = agg
				m.Consumer.Count++
				m.Consumer.Bytes += int64(ev.BodyBytes)
			}
			// Delay and fairness: messages produced during the run.
			if !producedInWindow[ev.MsgUID] {
				continue
			}
			st, ok := sendStart[ev.MsgUID]
			if !ok {
				continue
			}
			d := ev.Time.Sub(st).Seconds()
			delaySummary.Add(d)
			delays = append(delays, d)
			ps, ok := delaysByProducer[producerOf(ev.MsgUID)]
			if !ok {
				ps = &stats.Summary{}
				delaysByProducer[producerOf(ev.MsgUID)] = ps
			}
			ps.Add(d)
			cs, ok := delaysByConsumer[ev.Consumer]
			if !ok {
				cs = &stats.Summary{}
				delaysByConsumer[ev.Consumer] = cs
			}
			cs.Add(d)
		}
	}

	secs := window.Seconds()
	finalize := func(t *Throughput) {
		t.PerSecond = float64(t.Count) / secs
		t.BytesPerSecond = float64(t.Bytes) / secs
	}
	finalize(&m.Producer)
	finalize(&m.Consumer)
	for k, v := range m.PerProducer {
		finalize(&v)
		m.PerProducer[k] = v
	}
	for k, v := range m.PerConsumer {
		finalize(&v)
		m.PerConsumer[k] = v
	}

	m.Delay = DelayStats{
		N:      delaySummary.N(),
		Min:    time.Duration(delaySummary.Min() * float64(time.Second)),
		Max:    time.Duration(delaySummary.Max() * float64(time.Second)),
		Mean:   time.Duration(delaySummary.Mean() * float64(time.Second)),
		StdDev: time.Duration(delaySummary.StdDev() * float64(time.Second)),
	}
	if len(delays) > 0 {
		m.Delay.P50 = time.Duration(stats.Quantile(delays, 0.50) * float64(time.Second))
		m.Delay.P95 = time.Duration(stats.Quantile(delays, 0.95) * float64(time.Second))
		m.Delay.P99 = time.Duration(stats.Quantile(delays, 0.99) * float64(time.Second))
	}

	m.Fairness = Fairness{
		PerProducerMean: map[string]time.Duration{},
		PerConsumerMean: map[string]time.Duration{},
	}
	var producerMeans, consumerMeans []float64
	for p, s := range delaysByProducer {
		producerMeans = append(producerMeans, s.Mean())
		m.Fairness.PerProducerMean[p] = time.Duration(s.Mean() * float64(time.Second))
	}
	for c, s := range delaysByConsumer {
		consumerMeans = append(consumerMeans, s.Mean())
		m.Fairness.PerConsumerMean[c] = time.Duration(s.Mean() * float64(time.Second))
	}
	m.Fairness.ProducerUnfairness = time.Duration(stats.StdDevOf(producerMeans) * float64(time.Second))
	m.Fairness.ConsumerUnfairness = time.Duration(stats.StdDevOf(consumerMeans) * float64(time.Second))

	if len(delays) > 0 {
		buckets := opts.HistogramBuckets
		if buckets <= 0 {
			buckets = 50
		}
		maxSec := opts.HistogramMaxSeconds
		if maxSec <= 0 {
			maxSec = delaySummary.Max() * 1.01
			if maxSec <= 0 {
				maxSec = 0.001
			}
		}
		h := stats.NewHistogram(0, maxSec, buckets)
		for _, d := range delays {
			h.Add(d)
		}
		m.DelayHistogram = h
	}
	return m, nil
}

// producerOf extracts the producer from a message UID
// ("producer/seq").
func producerOf(uid string) string {
	if i := strings.LastIndexByte(uid, '/'); i >= 0 {
		return uid[:i]
	}
	return uid
}
