package analysis

import (
	"time"

	"jmsharness/internal/stats"
	"jmsharness/internal/trace"
)

// StreamAggregator computes the performance measures in a single
// streaming pass, event by event, without materialising the trace. It
// implements the fix the paper's §4.1 arrives at: "For performance
// testing, a database is not really necessary, as only simple
// statistical information needs to be gathered. This information can be
// computed by the daemon prince and then inserted into the database."
//
// The aggregator keeps O(producers + consumers + in-flight messages)
// state: per-identity Welford summaries plus a send-time index that is
// dropped as messages are matched. Events may arrive in any interleaving
// that preserves each message's send-before-deliver order.
type StreamAggregator struct {
	windowStart time.Time
	windowEnd   time.Time
	haveWindow  bool

	sendStart map[string]time.Time
	produced  map[string]bool

	producer    Throughput
	consumer    Throughput
	perProducer map[string]*Throughput
	perConsumer map[string]*Throughput

	delay       stats.Summary
	byProducer  map[string]*stats.Summary
	byConsumer  map[string]*stats.Summary
	firstTime   time.Time
	lastTime    time.Time
	phaseActive bool
	sawRunPhase bool
}

// NewStreamAggregator returns an empty aggregator. If the event stream
// contains run-phase markers, measurement is restricted to the run
// window; otherwise the whole stream is measured.
func NewStreamAggregator() *StreamAggregator {
	return &StreamAggregator{
		sendStart:   map[string]time.Time{},
		produced:    map[string]bool{},
		perProducer: map[string]*Throughput{},
		perConsumer: map[string]*Throughput{},
		byProducer:  map[string]*stats.Summary{},
		byConsumer:  map[string]*stats.Summary{},
	}
}

// Observe feeds one event into the aggregator. Events must arrive in
// per-node order (the natural order of a log being streamed in).
func (a *StreamAggregator) Observe(ev trace.Event) {
	if a.firstTime.IsZero() || ev.Time.Before(a.firstTime) {
		a.firstTime = ev.Time
	}
	if ev.Time.After(a.lastTime) {
		a.lastTime = ev.Time
	}
	switch ev.Type {
	case trace.EventPhase:
		switch ev.Detail {
		case trace.PhaseRun:
			// The stream cannot know in advance that a run phase is
			// coming, so warm-up events were aggregated; discard them
			// now and measure from here. Send-start times are kept: a
			// run delivery of a warm-up message still needs its delay
			// anchor (though it won't count, having not been produced
			// in-window).
			a.produced = map[string]bool{}
			a.producer = Throughput{}
			a.consumer = Throughput{}
			a.perProducer = map[string]*Throughput{}
			a.perConsumer = map[string]*Throughput{}
			a.delay = stats.Summary{}
			a.byProducer = map[string]*stats.Summary{}
			a.byConsumer = map[string]*stats.Summary{}
			a.windowStart = ev.Time
			a.phaseActive = true
			a.sawRunPhase = true
			a.haveWindow = true
		case trace.PhaseWarmdown, trace.PhaseDone:
			if a.phaseActive {
				a.windowEnd = ev.Time
				a.phaseActive = false
			}
		}

	case trace.EventSendStart:
		a.sendStart[ev.MsgUID] = ev.Time

	case trace.EventSendEnd:
		if ev.Err != "" {
			delete(a.sendStart, ev.MsgUID)
			return
		}
		if !a.inWindow(ev.Time) {
			return
		}
		a.produced[ev.MsgUID] = true
		a.producer.Count++
		a.producer.Bytes += int64(ev.BodyBytes)
		tp := a.perProducer[ev.Producer]
		if tp == nil {
			tp = &Throughput{}
			a.perProducer[ev.Producer] = tp
		}
		tp.Count++
		tp.Bytes += int64(ev.BodyBytes)

	case trace.EventDeliver:
		if a.inWindow(ev.Time) {
			a.consumer.Count++
			a.consumer.Bytes += int64(ev.BodyBytes)
			tc := a.perConsumer[ev.Consumer]
			if tc == nil {
				tc = &Throughput{}
				a.perConsumer[ev.Consumer] = tc
			}
			tc.Count++
			tc.Bytes += int64(ev.BodyBytes)
		}
		if !a.produced[ev.MsgUID] {
			return
		}
		st, ok := a.sendStart[ev.MsgUID]
		if !ok {
			return
		}
		d := ev.Time.Sub(st).Seconds()
		a.delay.Add(d)
		ps := a.byProducer[producerOf(ev.MsgUID)]
		if ps == nil {
			ps = &stats.Summary{}
			a.byProducer[producerOf(ev.MsgUID)] = ps
		}
		ps.Add(d)
		cs := a.byConsumer[ev.Consumer]
		if cs == nil {
			cs = &stats.Summary{}
			a.byConsumer[ev.Consumer] = cs
		}
		cs.Add(d)
	}
}

// inWindow reports whether t falls in the measurement window. Before any
// phase marker is seen, everything is in-window (whole-stream mode).
func (a *StreamAggregator) inWindow(t time.Time) bool {
	if !a.sawRunPhase {
		return true
	}
	if t.Before(a.windowStart) {
		return false
	}
	if !a.phaseActive && !a.windowEnd.IsZero() && !t.Before(a.windowEnd) {
		return false
	}
	return true
}

// Finalize computes the measures from the aggregated state.
func (a *StreamAggregator) Finalize() *Measures {
	start, end := a.firstTime, a.lastTime
	if a.sawRunPhase {
		start = a.windowStart
		if !a.windowEnd.IsZero() {
			end = a.windowEnd
		}
	}
	window := end.Sub(start)
	secs := window.Seconds()
	if secs <= 0 {
		secs = 1
	}
	m := &Measures{
		WindowStart: start,
		WindowEnd:   end,
		Producer:    a.producer,
		Consumer:    a.consumer,
		PerProducer: map[string]Throughput{},
		PerConsumer: map[string]Throughput{},
	}
	fin := func(t Throughput) Throughput {
		t.PerSecond = float64(t.Count) / secs
		t.BytesPerSecond = float64(t.Bytes) / secs
		return t
	}
	m.Producer = fin(m.Producer)
	m.Consumer = fin(m.Consumer)
	for k, v := range a.perProducer {
		m.PerProducer[k] = fin(*v)
	}
	for k, v := range a.perConsumer {
		m.PerConsumer[k] = fin(*v)
	}
	m.Delay = DelayStats{
		N:      a.delay.N(),
		Min:    time.Duration(a.delay.Min() * float64(time.Second)),
		Max:    time.Duration(a.delay.Max() * float64(time.Second)),
		Mean:   time.Duration(a.delay.Mean() * float64(time.Second)),
		StdDev: time.Duration(a.delay.StdDev() * float64(time.Second)),
	}
	m.Fairness = Fairness{
		PerProducerMean: map[string]time.Duration{},
		PerConsumerMean: map[string]time.Duration{},
	}
	var pMeans, cMeans []float64
	for p, s := range a.byProducer {
		pMeans = append(pMeans, s.Mean())
		m.Fairness.PerProducerMean[p] = time.Duration(s.Mean() * float64(time.Second))
	}
	for c, s := range a.byConsumer {
		cMeans = append(cMeans, s.Mean())
		m.Fairness.PerConsumerMean[c] = time.Duration(s.Mean() * float64(time.Second))
	}
	m.Fairness.ProducerUnfairness = time.Duration(stats.StdDevOf(pMeans) * float64(time.Second))
	m.Fairness.ConsumerUnfairness = time.Duration(stats.StdDevOf(cMeans) * float64(time.Second))
	return m
}
