package clock

import (
	"testing"
	"time"
)

func TestRealClockAdvances(t *testing.T) {
	c := Real()
	a := c.Now()
	c.Sleep(time.Millisecond)
	if !c.Now().After(a) {
		t.Error("real clock did not advance")
	}
}

func TestFakeClockNow(t *testing.T) {
	start := time.Unix(1000, 0)
	f := NewFake(start)
	if !f.Now().Equal(start) {
		t.Errorf("Now = %v, want %v", f.Now(), start)
	}
	f.Advance(5 * time.Second)
	if !f.Now().Equal(start.Add(5 * time.Second)) {
		t.Errorf("Now = %v after advance", f.Now())
	}
}

func TestFakeClockAfter(t *testing.T) {
	f := NewFake(time.Unix(0, 0))
	ch := f.After(10 * time.Second)
	select {
	case <-ch:
		t.Fatal("timer fired early")
	default:
	}
	f.Advance(9 * time.Second)
	select {
	case <-ch:
		t.Fatal("timer fired before deadline")
	default:
	}
	f.Advance(time.Second)
	select {
	case tm := <-ch:
		if !tm.Equal(time.Unix(10, 0)) {
			t.Errorf("fired at %v", tm)
		}
	case <-time.After(time.Second):
		t.Fatal("timer did not fire")
	}
}

func TestFakeClockAfterImmediate(t *testing.T) {
	f := NewFake(time.Unix(0, 0))
	select {
	case <-f.After(0):
	default:
		t.Error("zero-duration After should fire immediately")
	}
}

func TestFakeClockSleepWakesOnAdvance(t *testing.T) {
	f := NewFake(time.Unix(0, 0))
	done := make(chan struct{})
	go func() {
		f.Sleep(time.Second)
		close(done)
	}()
	// Give the sleeper a moment to register.
	time.Sleep(10 * time.Millisecond)
	f.Advance(time.Second)
	select {
	case <-done:
	case <-time.After(time.Second):
		t.Fatal("Sleep did not wake after Advance")
	}
}

func TestSkewedClockOffset(t *testing.T) {
	f := NewFake(time.Unix(100, 0))
	s := NewSkewed(f, 3*time.Second, 0)
	if got := s.Now(); !got.Equal(time.Unix(103, 0)) {
		t.Errorf("skewed Now = %v, want 103s", got)
	}
}

func TestSkewedClockDrift(t *testing.T) {
	f := NewFake(time.Unix(0, 0))
	s := NewSkewed(f, 0, 0.001) // 1000 ppm
	f.Advance(1000 * time.Second)
	want := time.Unix(1001, 0)
	got := s.Now()
	if got.Sub(want) > time.Millisecond || want.Sub(got) > time.Millisecond {
		t.Errorf("drifted Now = %v, want ~%v", got, want)
	}
}

func TestSampleOffsetAndDelay(t *testing.T) {
	// Local clock 10s behind reference, 1s one-way delay.
	s := Sample{
		LocalSend: time.Unix(0, 0),
		RemoteRx:  time.Unix(11, 0),
		RemoteTx:  time.Unix(11, 0),
		LocalRecv: time.Unix(2, 0),
	}
	if got := s.Offset(); got != 10*time.Second {
		t.Errorf("Offset = %v, want 10s", got)
	}
	if got := s.Delay(); got != 2*time.Second {
		t.Errorf("Delay = %v, want 2s", got)
	}
}

func TestEstimateOffsetPrefersLowDelay(t *testing.T) {
	good := Sample{ // offset +5s, delay 0
		LocalSend: time.Unix(0, 0), RemoteRx: time.Unix(5, 0),
		RemoteTx: time.Unix(5, 0), LocalRecv: time.Unix(0, 0),
	}
	noisy := Sample{ // offset +20s but huge delay
		LocalSend: time.Unix(0, 0), RemoteRx: time.Unix(30, 0),
		RemoteTx: time.Unix(30, 0), LocalRecv: time.Unix(20, 0),
	}
	off, err := EstimateOffset([]Sample{noisy, good, noisy, good})
	if err != nil {
		t.Fatal(err)
	}
	if off != 5*time.Second {
		t.Errorf("EstimateOffset = %v, want 5s", off)
	}
}

func TestEstimateOffsetEmpty(t *testing.T) {
	if _, err := EstimateOffset(nil); err == nil {
		t.Error("empty sample set should error")
	}
}

func TestSyncEstimatesSkew(t *testing.T) {
	ref := NewFake(time.Unix(1000, 0))
	local := NewSkewed(ref, -7*time.Second, 0)
	off, err := Sync(local, ref, 5, 0)
	if err != nil {
		t.Fatal(err)
	}
	// local = ref - 7s, so offset of local relative to ref is +7s.
	if off < 6900*time.Millisecond || off > 7100*time.Millisecond {
		t.Errorf("Sync offset = %v, want ~7s", off)
	}
}

func TestSyncInvalidCount(t *testing.T) {
	if _, err := Sync(Real(), Real(), 0, 0); err == nil {
		t.Error("zero samples should error")
	}
}
