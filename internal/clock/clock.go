// Package clock provides the time sources used throughout the harness.
//
// The paper's analysis depends on cross-machine timestamp comparability:
// "The test analysis is dependent, particularly when testing performance,
// on all system clocks being synchronised. The network time protocol (NTP)
// provides synchronisation to millisecond accuracy." This package provides
// a real clock, a deterministic fake clock for tests, a skewed clock that
// simulates an unsynchronised machine, and an NTP-like offset estimator
// used when merging traces recorded on different nodes.
package clock

import (
	"sync"
	"time"
)

// Clock abstracts the time source so tests and simulations can run on
// virtual time.
type Clock interface {
	// Now returns the current time on this clock.
	Now() time.Time
	// Sleep blocks for at least d of this clock's time.
	Sleep(d time.Duration)
	// After returns a channel that delivers the clock's time after d.
	After(d time.Duration) <-chan time.Time
}

// Real returns the wall clock.
func Real() Clock { return realClock{} }

type realClock struct{}

var _ Clock = realClock{}

func (realClock) Now() time.Time                         { return time.Now() }
func (realClock) Sleep(d time.Duration)                  { time.Sleep(d) }
func (realClock) After(d time.Duration) <-chan time.Time { return time.After(d) }

// Fake is a manually advanced clock for deterministic tests. The zero
// value is not usable; construct with NewFake.
type Fake struct {
	mu      sync.Mutex
	now     time.Time
	waiters []*fakeWaiter
}

type fakeWaiter struct {
	deadline time.Time
	ch       chan time.Time
}

// NewFake returns a Fake clock reading start.
func NewFake(start time.Time) *Fake {
	return &Fake{now: start}
}

var _ Clock = (*Fake)(nil)

// Now returns the fake clock's current reading.
func (f *Fake) Now() time.Time {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.now
}

// Sleep blocks until the fake clock has been advanced past d.
func (f *Fake) Sleep(d time.Duration) {
	<-f.After(d)
}

// After returns a channel that fires once the clock advances by d.
func (f *Fake) After(d time.Duration) <-chan time.Time {
	f.mu.Lock()
	defer f.mu.Unlock()
	ch := make(chan time.Time, 1)
	w := &fakeWaiter{deadline: f.now.Add(d), ch: ch}
	if d <= 0 {
		ch <- f.now
		return ch
	}
	f.waiters = append(f.waiters, w)
	return ch
}

// Advance moves the fake clock forward by d, firing any waiters whose
// deadlines are reached.
func (f *Fake) Advance(d time.Duration) {
	f.mu.Lock()
	f.now = f.now.Add(d)
	now := f.now
	remaining := f.waiters[:0]
	var fired []*fakeWaiter
	for _, w := range f.waiters {
		if !w.deadline.After(now) {
			fired = append(fired, w)
		} else {
			remaining = append(remaining, w)
		}
	}
	f.waiters = remaining
	f.mu.Unlock()
	for _, w := range fired {
		w.ch <- now
	}
}

// Skewed wraps a Clock and applies a constant offset plus a linear drift
// rate, simulating an unsynchronised machine clock. Drift is expressed in
// seconds of skew per second of real time (e.g. 50e-6 is 50 ppm).
type Skewed struct {
	base   Clock
	epoch  time.Time
	offset time.Duration
	drift  float64
}

// NewSkewed returns a clock that reads base plus offset plus drift
// accumulated since construction.
func NewSkewed(base Clock, offset time.Duration, drift float64) *Skewed {
	return &Skewed{base: base, epoch: base.Now(), offset: offset, drift: drift}
}

var _ Clock = (*Skewed)(nil)

// Now returns the skewed time.
func (s *Skewed) Now() time.Time {
	t := s.base.Now()
	elapsed := t.Sub(s.epoch)
	driftAmt := time.Duration(float64(elapsed) * s.drift)
	return t.Add(s.offset).Add(driftAmt)
}

// Sleep sleeps on the base clock (skew does not change durations
// materially at realistic drift rates).
func (s *Skewed) Sleep(d time.Duration) { s.base.Sleep(d) }

// After defers to the base clock.
func (s *Skewed) After(d time.Duration) <-chan time.Time { return s.base.After(d) }
