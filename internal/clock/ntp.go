package clock

import (
	"errors"
	"fmt"
	"sort"
	"time"
)

// Sample is one NTP-style round-trip measurement between a local clock and
// a reference clock: the local send time, the reference receive/transmit
// time, and the local receive time.
type Sample struct {
	LocalSend time.Time
	RemoteRx  time.Time
	RemoteTx  time.Time
	LocalRecv time.Time
}

// Offset returns the estimated offset of the local clock relative to the
// reference, using the standard NTP clock-offset formula
// ((T2-T1)+(T3-T4))/2.
func (s Sample) Offset() time.Duration {
	a := s.RemoteRx.Sub(s.LocalSend)
	b := s.RemoteTx.Sub(s.LocalRecv)
	return (a + b) / 2
}

// Delay returns the estimated round-trip delay (T4-T1)-(T3-T2).
func (s Sample) Delay() time.Duration {
	return s.LocalRecv.Sub(s.LocalSend) - s.RemoteTx.Sub(s.RemoteRx)
}

// EstimateOffset combines multiple samples into a single offset estimate.
// Following NTP practice, it prefers the samples with the smallest
// round-trip delay (the delay bounds the offset error) and returns the
// median offset of the best half.
func EstimateOffset(samples []Sample) (time.Duration, error) {
	if len(samples) == 0 {
		return 0, errors.New("clock: no samples")
	}
	sorted := make([]Sample, len(samples))
	copy(sorted, samples)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Delay() < sorted[j].Delay() })
	best := sorted[:(len(sorted)+1)/2]
	offsets := make([]time.Duration, len(best))
	for i, s := range best {
		offsets[i] = s.Offset()
	}
	sort.Slice(offsets, func(i, j int) bool { return offsets[i] < offsets[j] })
	return offsets[len(offsets)/2], nil
}

// Sync performs n measurement exchanges between local and reference and
// returns the estimated offset of local relative to reference. Each
// exchange reads the local clock, reads the reference twice (receive and
// transmit), and reads the local clock again; netDelay simulates the
// one-way network latency of the exchange, and may be zero.
func Sync(local, reference Clock, n int, netDelay time.Duration) (time.Duration, error) {
	if n <= 0 {
		return 0, fmt.Errorf("clock: invalid sample count %d", n)
	}
	samples := make([]Sample, 0, n)
	for i := 0; i < n; i++ {
		t1 := local.Now()
		if netDelay > 0 {
			local.Sleep(netDelay)
		}
		t2 := reference.Now()
		t3 := reference.Now()
		if netDelay > 0 {
			local.Sleep(netDelay)
		}
		t4 := local.Now()
		samples = append(samples, Sample{LocalSend: t1, RemoteRx: t2, RemoteTx: t3, LocalRecv: t4})
	}
	return EstimateOffset(samples)
}
