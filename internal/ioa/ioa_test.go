package ioa

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

// counterSpec is a simple automaton: inc (input) increments, dec
// (output) decrements and is only enabled when positive.
func counterSpec() *Spec[int] {
	return &Spec[int]{
		Name:    "counter",
		Initial: []int{0},
		Signature: func(name string) Kind {
			switch name {
			case "inc":
				return KindInput
			case "dec":
				return KindOutput
			default:
				return 0
			}
		},
		Step: func(s int, a Action) []int {
			switch a.Name {
			case "inc":
				return []int{s + 1}
			case "dec":
				if s > 0 {
					return []int{s - 1}
				}
				return nil
			default:
				return nil
			}
		},
	}
}

func acts(names ...string) []Action {
	out := make([]Action, len(names))
	for i, n := range names {
		out[i] = Action{Name: n}
	}
	return out
}

func TestKindString(t *testing.T) {
	if KindInput.String() != "input" || KindOutput.String() != "output" || KindInternal.String() != "internal" {
		t.Error("kind names wrong")
	}
	if !strings.HasPrefix(Kind(9).String(), "Kind(") {
		t.Error("unknown kind should format numerically")
	}
}

func TestActionString(t *testing.T) {
	if got := (Action{Name: "send", Param: 3}).String(); got != "send(3)" {
		t.Errorf("String = %q", got)
	}
	if got := (Action{Name: "crash"}).String(); got != "crash" {
		t.Errorf("String = %q", got)
	}
}

func TestCheckTraceAccepts(t *testing.T) {
	sp := counterSpec()
	if err := sp.CheckTrace(acts("inc", "inc", "dec", "dec")); err != nil {
		t.Errorf("valid trace rejected: %v", err)
	}
	if err := sp.CheckTrace(nil); err != nil {
		t.Errorf("empty trace rejected: %v", err)
	}
}

func TestCheckTraceRejects(t *testing.T) {
	sp := counterSpec()
	err := sp.CheckTrace(acts("inc", "dec", "dec"))
	if err == nil {
		t.Fatal("underflow trace accepted")
	}
	te, ok := err.(*TraceError)
	if !ok {
		t.Fatalf("error type %T", err)
	}
	if te.Index != 2 || te.Action.Name != "dec" {
		t.Errorf("TraceError = %+v", te)
	}
	if te.Error() == "" {
		t.Error("empty error message")
	}
}

func TestCheckTraceSkipsOutOfSignature(t *testing.T) {
	sp := counterSpec()
	if err := sp.CheckTrace(acts("noise", "inc", "other", "dec")); err != nil {
		t.Errorf("out-of-signature actions should be skipped: %v", err)
	}
}

// nondetSpec can move to two states on "fork"; only one of them enables
// "win". Subset simulation must keep both candidates alive.
func nondetSpec() *Spec[int] {
	return &Spec[int]{
		Name:    "nondet",
		Initial: []int{0},
		Signature: func(name string) Kind {
			if name == "fork" || name == "win" {
				return KindOutput
			}
			return 0
		},
		Step: func(s int, a Action) []int {
			switch {
			case a.Name == "fork" && s == 0:
				return []int{1, 2}
			case a.Name == "win" && s == 2:
				return []int{3}
			default:
				return nil
			}
		},
	}
}

func TestCheckTraceNondeterminism(t *testing.T) {
	sp := nondetSpec()
	if err := sp.CheckTrace(acts("fork", "win")); err != nil {
		t.Errorf("subset simulation lost a branch: %v", err)
	}
	if err := sp.CheckTrace(acts("fork", "win", "win")); err == nil {
		t.Error("impossible continuation accepted")
	}
}

func TestEnabled(t *testing.T) {
	sp := counterSpec()
	if sp.Enabled([]int{0}, Action{Name: "dec"}) {
		t.Error("dec enabled at 0")
	}
	if !sp.Enabled([]int{0, 3}, Action{Name: "dec"}) {
		t.Error("dec not enabled with a positive candidate")
	}
}

func TestComposeSynchronises(t *testing.T) {
	// Two counters sharing "inc": both must step together; each has a
	// private action.
	left := counterSpec()
	right := &Spec[int]{
		Name:    "bound",
		Initial: []int{0},
		Signature: func(name string) Kind {
			switch name {
			case "inc":
				return KindInput
			case "reset":
				return KindOutput
			default:
				return 0
			}
		},
		Step: func(s int, a Action) []int {
			switch a.Name {
			case "inc":
				if s < 2 { // refuses more than 2 increments
					return []int{s + 1}
				}
				return nil
			case "reset":
				return []int{0}
			default:
				return nil
			}
		},
	}
	comp := Compose(left, right)
	if err := comp.CheckTrace(acts("inc", "inc", "dec")); err != nil {
		t.Errorf("composed trace rejected: %v", err)
	}
	// The right component blocks a third inc.
	if err := comp.CheckTrace(acts("inc", "inc", "inc")); err == nil {
		t.Error("composition failed to synchronise on shared action")
	}
	// Private actions step one side only: reset then more incs is fine.
	if err := comp.CheckTrace(acts("inc", "inc", "reset", "inc", "dec", "dec", "dec")); err != nil {
		t.Errorf("private action handling broken: %v", err)
	}
	// dec is left-private: three decs after two incs must fail.
	if err := comp.CheckTrace(acts("inc", "inc", "dec", "dec", "dec")); err == nil {
		t.Error("left-private constraint lost in composition")
	}
}

func TestComposeSignatureKinds(t *testing.T) {
	comp := Compose(counterSpec(), nondetSpec())
	if comp.Signature("inc") != KindInput {
		t.Error("left-only action should keep its kind")
	}
	if comp.Signature("fork") != KindOutput {
		t.Error("right-only action should keep its kind")
	}
	if comp.Signature("nothing") != 0 {
		t.Error("unknown action should stay out of signature")
	}
}

func TestRun(t *testing.T) {
	sp := counterSpec()
	exec, err := sp.Run(acts("inc", "dec", "dec", "inc"), 10)
	if err != nil {
		t.Fatal(err)
	}
	// "dec" at 0 is skipped (not enabled).
	want := []string{"inc", "dec", "inc"}
	if len(exec.Actions) != len(want) {
		t.Fatalf("executed %v", exec.Actions)
	}
	for i, a := range exec.Actions {
		if a.Name != want[i] {
			t.Errorf("action %d = %s, want %s", i, a.Name, want[i])
		}
	}
	if exec.States[len(exec.States)-1] != 1 {
		t.Errorf("final state = %v", exec.States[len(exec.States)-1])
	}
	if exec.String() == "" {
		t.Error("execution renders empty")
	}
}

func TestRunNoInitial(t *testing.T) {
	sp := &Spec[int]{Name: "empty"}
	if _, err := sp.Run(nil, 1); err == nil {
		t.Error("Run with no initial state should error")
	}
}

// TestFIFOChannelProperty models the paper's core use: a reliable FIFO
// channel automaton accepts exactly the interleavings where receives
// follow sends in order. Random valid interleavings must be accepted;
// traces with a swapped receive pair must be rejected.
func TestFIFOChannelProperty(t *testing.T) {
	type chState struct{ sent, recv int }
	fifo := &Spec[chState]{
		Name:    "fifo",
		Initial: []chState{{}},
		Signature: func(name string) Kind {
			switch name {
			case "send":
				return KindInput
			case "recv":
				return KindOutput
			default:
				return 0
			}
		},
		Step: func(s chState, a Action) []chState {
			seq, ok := a.Param.(int)
			if !ok {
				return nil
			}
			switch a.Name {
			case "send":
				if seq == s.sent+1 {
					return []chState{{sent: seq, recv: s.recv}}
				}
				return nil
			case "recv":
				if seq == s.recv+1 && seq <= s.sent {
					return []chState{{sent: s.sent, recv: seq}}
				}
				return nil
			default:
				return nil
			}
		},
	}

	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(10)
		// Build a random valid interleaving.
		var tr []Action
		sent, recv := 0, 0
		for recv < n {
			if sent < n && (recv == sent || r.Intn(2) == 0) {
				sent++
				tr = append(tr, Action{Name: "send", Param: sent})
			} else {
				recv++
				tr = append(tr, Action{Name: "recv", Param: recv})
			}
		}
		if err := fifo.CheckTrace(tr); err != nil {
			t.Logf("valid interleaving rejected: %v", err)
			return false
		}
		// Swap two receives to violate FIFO.
		var recvIdx []int
		for i, a := range tr {
			if a.Name == "recv" {
				recvIdx = append(recvIdx, i)
			}
		}
		if len(recvIdx) < 2 {
			return true
		}
		i, j := recvIdx[0], recvIdx[len(recvIdx)-1]
		bad := make([]Action, len(tr))
		copy(bad, tr)
		bad[i], bad[j] = bad[j], bad[i]
		if err := fifo.CheckTrace(bad); err == nil {
			t.Logf("FIFO violation accepted: %v", bad)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
