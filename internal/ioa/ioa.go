// Package ioa is a small input/output automata framework in the style of
// Lynch (Distributed Algorithms, 1996), which the paper uses as the
// foundation of its formal JMS model ("a formal model for JMS behaviour
// is developed, based on the I/O automata used in other group
// communication systems").
//
// A Spec describes an automaton by its initial states and a
// (possibly nondeterministic) step relation over a comparable state
// type. Trace membership — "is this observed behaviour a trace of the
// specification?" — is decided by simulating the set of states the
// automaton could be in after each action (a subset construction).
// Automata compose in parallel, synchronising on shared action names, so
// a system-wide specification can be assembled from per-channel
// specifications.
package ioa

import (
	"fmt"
	"strings"
)

// Kind classifies an action in an automaton's signature.
type Kind uint8

// Action kinds. Input actions are under the environment's control (an
// automaton must be input-enabled); output and internal actions are
// under the automaton's control; only input and output actions are
// externally visible (appear in traces).
const (
	KindInput Kind = iota + 1
	KindOutput
	KindInternal
)

// String returns the kind name.
func (k Kind) String() string {
	switch k {
	case KindInput:
		return "input"
	case KindOutput:
		return "output"
	case KindInternal:
		return "internal"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Action is one labelled transition. Name identifies the action class
// (e.g. "send"); Param carries the instance data (e.g. a message
// sequence number) and must be comparable so actions can be matched
// during composition.
type Action struct {
	Name  string
	Param any
}

// String renders the action as name(param).
func (a Action) String() string {
	if a.Param == nil {
		return a.Name
	}
	return fmt.Sprintf("%s(%v)", a.Name, a.Param)
}

// Spec is an automaton specification over comparable states.
type Spec[S comparable] struct {
	// Name labels the automaton in error messages.
	Name string
	// Initial is the set of start states (usually one).
	Initial []S
	// Signature classifies an action name; actions whose name it does
	// not recognise (KindReturn 0) are not in the automaton's signature
	// and are skipped during trace checking.
	Signature func(name string) Kind
	// Step returns the set of successor states of s under a. An empty
	// result means a is not enabled in s.
	Step func(s S, a Action) []S
}

// InSignature reports whether the action name is part of the
// automaton's signature.
func (sp *Spec[S]) InSignature(name string) bool {
	return sp.Signature != nil && sp.Signature(name) != 0
}

// TraceError reports the first action at which a trace left the
// specification's trace set.
type TraceError struct {
	// Automaton is the spec's name.
	Automaton string
	// Index is the position of the offending action within the checked
	// trace (counting only in-signature actions).
	Index int
	// Action is the offending action.
	Action Action
	// States is the number of candidate states before the action.
	States int
}

// Error implements error.
func (e *TraceError) Error() string {
	return fmt.Sprintf("ioa: %s: action %d %s is not enabled in any of %d candidate states",
		e.Automaton, e.Index, e.Action, e.States)
}

// CheckTrace decides trace membership by subset simulation: after each
// in-signature action, the candidate state set is the union of
// successors over all current candidates. The trace is rejected when
// that set becomes empty. Out-of-signature actions are ignored, matching
// the I/O-automata convention that a component's trace is the projection
// of the system trace onto its signature.
func (sp *Spec[S]) CheckTrace(actions []Action) error {
	current := map[S]struct{}{}
	for _, s := range sp.Initial {
		current[s] = struct{}{}
	}
	idx := 0
	for _, a := range actions {
		if !sp.InSignature(a.Name) {
			continue
		}
		next := map[S]struct{}{}
		for s := range current {
			for _, n := range sp.Step(s, a) {
				next[n] = struct{}{}
			}
		}
		if len(next) == 0 {
			return &TraceError{Automaton: sp.Name, Index: idx, Action: a, States: len(current)}
		}
		current = next
		idx++
	}
	return nil
}

// Enabled reports whether action a is enabled in at least one state of
// the given candidate set.
func (sp *Spec[S]) Enabled(states []S, a Action) bool {
	for _, s := range states {
		if len(sp.Step(s, a)) > 0 {
			return true
		}
	}
	return false
}

// Pair is the product state of a binary composition.
type Pair[A, B comparable] struct {
	Left  A
	Right B
}

// Compose forms the parallel composition of two automata. Actions in
// both signatures synchronise (both components step); actions in one
// signature step that component alone. Composition is the standard
// I/O-automata operator restricted to two components; nest calls for
// more.
func Compose[A, B comparable](x *Spec[A], y *Spec[B]) *Spec[Pair[A, B]] {
	initial := make([]Pair[A, B], 0, len(x.Initial)*len(y.Initial))
	for _, a := range x.Initial {
		for _, b := range y.Initial {
			initial = append(initial, Pair[A, B]{Left: a, Right: b})
		}
	}
	return &Spec[Pair[A, B]]{
		Name:    x.Name + "||" + y.Name,
		Initial: initial,
		Signature: func(name string) Kind {
			xk := Kind(0)
			if x.Signature != nil {
				xk = x.Signature(name)
			}
			yk := Kind(0)
			if y.Signature != nil {
				yk = y.Signature(name)
			}
			switch {
			case xk == 0:
				return yk
			case yk == 0:
				return xk
			// Output of one component drives inputs of the other; the
			// composite action is an output if either side outputs.
			case xk == KindOutput || yk == KindOutput:
				return KindOutput
			case xk == KindInternal || yk == KindInternal:
				return KindInternal
			default:
				return KindInput
			}
		},
		Step: func(s Pair[A, B], act Action) []Pair[A, B] {
			inX := x.InSignature(act.Name)
			inY := y.InSignature(act.Name)
			switch {
			case inX && inY:
				var out []Pair[A, B]
				for _, ns := range x.Step(s.Left, act) {
					for _, ms := range y.Step(s.Right, act) {
						out = append(out, Pair[A, B]{Left: ns, Right: ms})
					}
				}
				return out
			case inX:
				var out []Pair[A, B]
				for _, ns := range x.Step(s.Left, act) {
					out = append(out, Pair[A, B]{Left: ns, Right: s.Right})
				}
				return out
			case inY:
				var out []Pair[A, B]
				for _, ms := range y.Step(s.Right, act) {
					out = append(out, Pair[A, B]{Left: s.Left, Right: ms})
				}
				return out
			default:
				// Not in either signature: stutter.
				return []Pair[A, B]{s}
			}
		},
	}
}

// Execution is one run of an automaton: alternating states and actions.
type Execution[S comparable] struct {
	States  []S
	Actions []Action
}

// String renders the execution for diagnostics.
func (e *Execution[S]) String() string {
	var b strings.Builder
	for i, a := range e.Actions {
		fmt.Fprintf(&b, "%v --%s--> ", e.States[i], a)
	}
	if len(e.States) > 0 {
		fmt.Fprintf(&b, "%v", e.States[len(e.States)-1])
	}
	return b.String()
}

// Run executes the automaton from its first initial state, choosing at
// each step the first action from candidates that is enabled and the
// first successor state. It returns the resulting execution; actions
// that are never enabled are skipped. Run is a utility for exercising
// specifications in tests and examples.
func (sp *Spec[S]) Run(candidates []Action, maxSteps int) (*Execution[S], error) {
	if len(sp.Initial) == 0 {
		return nil, fmt.Errorf("ioa: %s has no initial state", sp.Name)
	}
	exec := &Execution[S]{States: []S{sp.Initial[0]}}
	state := sp.Initial[0]
	steps := 0
	for _, a := range candidates {
		if steps >= maxSteps {
			break
		}
		succ := sp.Step(state, a)
		if len(succ) == 0 {
			continue
		}
		state = succ[0]
		exec.Actions = append(exec.Actions, a)
		exec.States = append(exec.States, state)
		steps++
	}
	return exec, nil
}
