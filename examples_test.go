package jmsharness_test

import (
	"os/exec"
	"strings"
	"testing"
	"time"
)

// TestExamplesRun executes every example program end to end and checks
// it exits cleanly with its expected closing output. Each example is an
// executable piece of documentation; this keeps them honest.
func TestExamplesRun(t *testing.T) {
	if testing.Short() {
		t.Skip("runs every example binary")
	}
	cases := []struct {
		dir  string
		args []string
		want string
	}{
		{dir: "quickstart", want: "done"},
		{dir: "selectors", want: "done"},
		{dir: "requestreply", want: "done"},
		{dir: "conformance", want: "Detected"},
		{dir: "crashrecovery", want: "despite the crash"},
		{dir: "distributed", want: "distributed test conforms"},
		{dir: "comparison", args: []string{"-quick"}, want: "factor of 10"},
		{dir: "observability", want: "done"},
		{dir: "cluster", want: "done"},
	}
	for _, c := range cases {
		c := c
		t.Run(c.dir, func(t *testing.T) {
			t.Parallel()
			args := append([]string{"run", "./examples/" + c.dir}, c.args...)
			cmd := exec.Command("go", args...)
			cmd.Dir = "."
			start := time.Now()
			output, err := cmd.CombinedOutput()
			if err != nil {
				t.Fatalf("example %s failed after %v: %v\n%s", c.dir, time.Since(start), err, output)
			}
			if !strings.Contains(string(output), c.want) {
				t.Errorf("example %s output missing %q:\n%s", c.dir, c.want, output)
			}
		})
	}
}
