// Package jmsharness is a Go reproduction of "Automated Analysis of
// Java Message Service Providers" (Kuo & Palmer, Middleware 2001): a
// test harness that automates correctness (conformance) and performance
// testing of JMS-style message-oriented middleware.
//
// The system lives in internal/ packages:
//
//   - internal/jms — a Go messaging API with JMS 1.0.2 semantics;
//   - internal/broker — the reference provider (queues, topics, durable
//     subscriptions, transactions, priorities, expiry, persistence,
//     crash injection, performance profiles);
//   - internal/wire — a TCP wire protocol exposing any provider remotely;
//   - internal/faults — fault-injecting providers for checker validation;
//   - internal/ioa, internal/model — the formal I/O-automata model and
//     the safety-property checkers (Definitions 1–7, Properties 1–5);
//   - internal/analysis — the §3.2 performance measures;
//   - internal/harness, internal/daemon — workload execution and the
//     daemon-prince/test-daemon coordination of Figure 4;
//   - internal/experiments — regeneration of every figure and reported
//     result in the paper's evaluation;
//   - internal/obs — runtime observability: a dependency-free metrics
//     registry (counters, gauges, latency histograms), per-message span
//     tracing, and the /metricz HTTP introspection served by the
//     binaries' -obs-addr flag.
//
// The benchmarks in bench_test.go (one per table/figure) and the
// cmd/jmsbench tool print the same series the paper reports. See
// README.md, DESIGN.md and EXPERIMENTS.md.
package jmsharness
