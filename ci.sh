#!/bin/sh
# ci.sh — the repo's one-command check: formatting, build everything
# (the examples explicitly, so a broken example can never hide behind a
# cached ./... build), vet, and run the full test suite (including the
# obs concurrency tests) under the race detector.
set -eux

# Every QoS budget in the tree (jmsbench experiment gates, jmsanalyze
# -contract, the explorer's QoS oracle) is widened uniformly by
# JMSQOS_SLACK, read via qos.SlackFromEnv. This is the one place CI
# sets it: 2x absorbs a loaded shared runner without masking
# regressions in kind. Override per-invocation when hunting a flake.
export JMSQOS_SLACK=${JMSQOS_SLACK:-2}

unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
	echo "gofmt needed on:" >&2
	echo "$unformatted" >&2
	exit 1
fi

go build ./...
go build ./examples/...
go vet ./...
go test -race ./...

# Bounded randomized conformance exploration: mutate seeds for 30s and
# check every scenario's verdict against the oracle (clean stacks pass,
# known-faulty wrappers are flagged by the matching property). The
# checked-in corpus under internal/explore/testdata/fuzz already runs in
# the suite above; this stage searches beyond it. Set JMSFUZZ_TIME to
# widen the budget, or JMSFUZZ_TIME=0 to skip the stage.
fuzztime=${JMSFUZZ_TIME:-30s}
if [ "$fuzztime" != "0" ]; then
	go test -fuzz=FuzzConformance -fuzztime="$fuzztime" ./internal/explore
fi

# Chaos smoke: one partition-and-heal (plus a forced reset) conformance
# pass through the fault-injecting TCP proxy with reconnecting clients —
# every safety property must hold on the resulting trace. Set JMSCHAOS=0
# to skip the stage.
chaossmoke=${JMSCHAOS:-1}
if [ "$chaossmoke" != "0" ]; then
	go test -run TestChaosPartitionAndResetConformance -count=1 ./internal/experiments
fi

# Failover smoke: a short replicated-cluster run with a scripted
# permanent primary kill — the failure detector must promote the
# victim's destinations to their followers (>= 1 promotion logged),
# deliveries on the victim's queues must resume, and every safety
# property must hold straight through the outage. Set JMSFAILOVER=0 to
# skip the stage.
failoversmoke=${JMSFAILOVER:-1}
if [ "$failoversmoke" != "0" ]; then
	go test -run TestFailoverConformance -count=1 ./internal/experiments
fi

# Quorum smoke: the R=2 failover drill — the primary's preferred
# replication link is partitioned mid-run, then the primary is killed
# for good. The witness majority must still promote within budget, the
# second follower must cover every acked message (zero safety
# violations), and the R=1 regression pair must show the conformance
# checker attributing the loss the single-follower design would eat
# silently. Set JMSQUORUM=0 to skip the stage.
quorumsmoke=${JMSQUORUM:-1}
if [ "$quorumsmoke" != "0" ]; then
	go test -run 'TestQuorumConformance|TestSingleFollowerCoverGapAttributed' -count=1 ./internal/experiments
	go run ./cmd/jmsbench -experiment quorum -scale 0.5 -json-dir ""
fi

# Pipelining smoke: the credit-windowed async send path must be
# strictly faster than blocking round trips against the same wire
# server (best-of-three each, so a scheduler hiccup cannot flip the
# comparison). Guards the whole pipelined path: frame coalescing,
# window credits, completion batching. Set JMSPIPE=0 to skip.
pipesmoke=${JMSPIPE:-1}
if [ "$pipesmoke" != "0" ]; then
	JMSPIPE_SMOKE=1 go test -run TestPipelinedFasterThanBlocking -count=1 ./internal/wire
fi

# QoS conformance smoke: the quantitative side of the gate. Each
# experiment declares a contract (delay percentiles, throughput floors,
# failover MTTR/unavailability budgets); jmsbench embeds the verdicts
# in its report and exits non-zero on any violation. A short saturation
# point checks the capacity floors, a failover drill checks the
# recovery budgets through a real promotion. Set JMSQOS=0 to skip.
qossmoke=${JMSQOS:-1}
if [ "$qossmoke" != "0" ]; then
	go run ./cmd/jmsbench -experiment saturation -scale 0.2 -json-dir ""
	go run ./cmd/jmsbench -experiment failover -scale 0.5 -json-dir ""
fi

# Trace smoke: run a short traced saturation sweep exporting spans to
# JSONL, then validate the export offline — every line must parse as a
# span, and at least one trace must link three or more causally related
# hops (client RPC → server recv → broker enqueue), proving end-to-end
# trace propagation across the wire. Set JMSTRACE=0 to skip the stage.
tracesmoke=${JMSTRACE:-1}
if [ "$tracesmoke" != "0" ]; then
	tracedir=$(mktemp -d)
	go run ./cmd/jmsbench -experiment saturation -scale 0.05 -trace-out "$tracedir/spans.jsonl" -json-dir ""
	go run ./cmd/jmsanalyze -spans "$tracedir/spans.jsonl" -min-hops 3
	rm -rf "$tracedir"
fi

# Opt-in hot-path microbenchmarks (broker send/ack, WAL group-commit
# append, wire round trip): set JMSBENCH_TIME (a -benchtime value, e.g.
# 1s or 2000x) to run them, so a perf regression is one command away.
# Off by default to keep ci fast.
benchtime=${JMSBENCH_TIME:-0}
if [ "$benchtime" != "0" ]; then
	go test -run '^$' -bench 'SendAck|WALAppend|SendReceive|SendPipelined' -benchtime="$benchtime" .
fi
