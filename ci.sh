#!/bin/sh
# ci.sh — the repo's one-command check: formatting, build everything
# (the examples explicitly, so a broken example can never hide behind a
# cached ./... build), vet, and run the full test suite (including the
# obs concurrency tests) under the race detector.
set -eux

unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
	echo "gofmt needed on:" >&2
	echo "$unformatted" >&2
	exit 1
fi

go build ./...
go build ./examples/...
go vet ./...
go test -race ./...
