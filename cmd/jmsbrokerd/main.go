// Command jmsbrokerd runs the reference JMS provider behind the wire
// protocol, so harness daemons on other processes or machines can test
// it over TCP:
//
//	jmsbrokerd -addr 127.0.0.1:7800 -profile provider-I
//
// With -wal the broker's stable store is a write-ahead log on disk, so
// persistent messages and durable subscriptions survive process
// restarts.
//
// With -obs-addr the broker serves live introspection over HTTP:
// /metricz (broker and wire counters, gauges, latency histograms),
// /spanz (recent per-message spans), /healthz, and /debug/pprof.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"jmsharness/internal/broker"
	"jmsharness/internal/obs"
	"jmsharness/internal/store"
	"jmsharness/internal/wire"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "jmsbrokerd:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("jmsbrokerd", flag.ContinueOnError)
	addr := fs.String("addr", "127.0.0.1:7800", "listen address")
	profileName := fs.String("profile", "unlimited", "performance profile: unlimited, provider-I, provider-II, provider-A/B/C")
	name := fs.String("name", "brokerd", "broker name (prefixes message IDs)")
	walPath := fs.String("wal", "", "write-ahead log path for the stable store (empty: in-memory)")
	obsAddr := fs.String("obs-addr", "", "HTTP observability address (/metricz, /spanz, /healthz, /debug/pprof); empty: disabled")
	if err := fs.Parse(args); err != nil {
		return err
	}

	profile, err := broker.ProfileByName(*profileName)
	if err != nil {
		return err
	}
	var stable store.Store
	if *walPath != "" {
		wal, err := store.OpenWAL(*walPath, store.WALOptions{Sync: true})
		if err != nil {
			return err
		}
		defer wal.Close()
		stable = wal
	}

	// One registry backs both the broker and the wire server, so a
	// single /metricz shows the whole process. Span tracing only runs
	// when someone can look at it.
	reg := obs.NewRegistry()
	var spans *obs.Spans
	brokerOpts := broker.Options{Name: *name, Profile: profile, Stable: stable, Metrics: reg}
	if *obsAddr != "" {
		spans = obs.NewSpans(reg, obs.DefaultMaxInFlight, obs.DefaultKeep)
		brokerOpts.Spans = spans
	}
	b, err := broker.New(brokerOpts)
	if err != nil {
		return err
	}
	defer b.Close()

	srv, err := wire.NewServer(b, *addr)
	if err != nil {
		return err
	}
	srv.WithMetrics(reg)
	if *obsAddr != "" {
		h := obs.NewHandler(reg)
		h.HandleJSON("/spanz", func() any { return spans.Snapshot() })
		ohs, err := obs.NewHTTPServer(*obsAddr, h)
		if err != nil {
			return err
		}
		defer ohs.Close()
		fmt.Printf("jmsbrokerd: observability on http://%s/metricz\n", ohs.Addr())
	}
	fmt.Printf("jmsbrokerd: serving %s profile on %s\n", profile.Name, srv.Addr())

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	errCh := make(chan error, 1)
	go func() { errCh <- srv.Serve() }()
	select {
	case <-sig:
		fmt.Println("jmsbrokerd: shutting down")
		return srv.Close()
	case err := <-errCh:
		return err
	}
}
