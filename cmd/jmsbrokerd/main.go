// Command jmsbrokerd runs the reference JMS provider behind the wire
// protocol, so harness daemons on other processes or machines can test
// it over TCP:
//
//	jmsbrokerd -addr 127.0.0.1:7800 -profile provider-I
//
// With -cluster N the process serves a sharded federation of N broker
// nodes behind one wire endpoint: destinations are spread across the
// nodes by consistent hashing (-placement picks the policy), so the
// same -addr speaks for the whole cluster.
//
// With -wal the broker's stable store is a write-ahead log on disk, so
// persistent messages and durable subscriptions survive process
// restarts; in cluster mode each node gets its own log (<path>.<i>).
//
// With -replicate (cluster mode, N >= 2) every destination additionally
// gets WAL-shipping followers on other nodes (-replication-factor, one
// by default) with quorum acknowledgement (-quorum follower acks per
// write, majority by default) and witness-voted failover: if a majority
// of live witnesses agree a node is dead, its destinations are promoted
// to their most-caught-up followers and the dead node is fenced.
// /clusterz then carries the per-destination primary/followers table
// with quorum health, per-link replication lag, witness suspicions and
// the last promotion epoch.
//
// With -obs-addr the broker serves live introspection over HTTP:
// /metricz (broker and wire counters, gauges, latency histograms),
// /spanz (recent per-message spans), /clusterz (cluster topology and
// per-node routing, cluster mode only), /healthz, and /debug/pprof.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"jmsharness/internal/broker"
	"jmsharness/internal/cluster"
	"jmsharness/internal/jms"
	"jmsharness/internal/obs"
	"jmsharness/internal/replica"
	"jmsharness/internal/store"
	"jmsharness/internal/wire"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "jmsbrokerd:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("jmsbrokerd", flag.ContinueOnError)
	addr := fs.String("addr", "127.0.0.1:7800", "listen address")
	profileName := fs.String("profile", "unlimited", "performance profile: unlimited, provider-I, provider-II, provider-A/B/C")
	name := fs.String("name", "brokerd", "broker name (prefixes message IDs)")
	walPath := fs.String("wal", "", "write-ahead log path for the stable store (empty: in-memory); cluster nodes append .<i>")
	walShards := fs.Int("wal-shards", 1, "segment the WAL into N shard logs with independent commit loops (requires -wal)")
	clusterN := fs.Int("cluster", 1, "number of federated broker nodes behind this endpoint (1: single broker)")
	placementName := fs.String("placement", "hash-ring", "cluster placement policy: hash-ring, modulo")
	replicate := fs.Bool("replicate", false, "replicate every destination to follower nodes with automated failover (requires -cluster >= 2)")
	replFactor := fs.Int("replication-factor", 1, "followers per destination with -replicate (at most -cluster minus 1)")
	quorum := fs.Int("quorum", 0, "follower acks required before a write is acked with -replicate (0: majority of -replication-factor)")
	obsAddr := fs.String("obs-addr", "", "HTTP observability address (/metricz, /spanz, /clusterz, /healthz, /debug/pprof); empty: disabled")
	traceOut := fs.String("trace-out", "", "durable JSONL span export path (empty: disabled)")
	traceSample := fs.Float64("trace-sample", 1.0, "head-based trace sampling fraction for -trace-out (0,1]")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *clusterN < 1 {
		return fmt.Errorf("-cluster must be >= 1, got %d", *clusterN)
	}
	if *replicate && *clusterN < 2 {
		return fmt.Errorf("-replicate needs -cluster >= 2 for a distinct follower, got %d", *clusterN)
	}
	if !*replicate && (*replFactor != 1 || *quorum != 0) {
		return fmt.Errorf("-replication-factor and -quorum need -replicate")
	}
	if *replicate {
		if *replFactor < 1 || *replFactor > *clusterN-1 {
			return fmt.Errorf("-replication-factor %d needs that many distinct followers out of %d nodes", *replFactor, *clusterN)
		}
		if *quorum < 0 || *quorum > *replFactor {
			return fmt.Errorf("-quorum %d exceeds -replication-factor %d", *quorum, *replFactor)
		}
	}
	if *walShards < 1 {
		return fmt.Errorf("-wal-shards must be >= 1, got %d", *walShards)
	}
	if *walShards > 1 && *walPath == "" {
		return fmt.Errorf("-wal-shards needs -wal")
	}
	if *walShards > 1 && *replicate {
		// Replication ships committed ops over the store stream, whose
		// ordering guarantees are per-WAL; a sharded log behind one
		// stream is untested territory, so refuse rather than guess.
		return fmt.Errorf("-wal-shards is not supported with -replicate")
	}

	profile, err := broker.ProfileByName(*profileName)
	if err != nil {
		return err
	}

	// One registry backs the brokers, the cluster front-end and the
	// wire server, so a single /metricz shows the whole process. Span
	// tracing only runs when someone can look at it — either the HTTP
	// introspection endpoint or a durable -trace-out export.
	reg := obs.NewRegistry()
	var spans *obs.Spans
	if *obsAddr != "" || *traceOut != "" {
		spans = obs.NewSpans(reg, obs.DefaultMaxInFlight, obs.DefaultKeep)
	}
	if *traceOut != "" {
		sink, err := obs.NewJSONLSink(*traceOut, *traceSample, reg)
		if err != nil {
			return fmt.Errorf("opening span export: %w", err)
		}
		defer sink.Close()
		spans.Tee(sink)
		fmt.Printf("jmsbrokerd: exporting spans to %s (sample %.2f)\n", *traceOut, *traceSample)
	}

	// Each node may hold a WAL; the logs outlive their brokers so close
	// them last, after the server and brokers have shut down.
	var walClosers []func() error
	defer func() {
		for _, cl := range walClosers {
			_ = cl()
		}
	}()

	newBroker := func(name string, i int) (*broker.Broker, error) {
		var stable store.Store
		if *walPath != "" {
			path := *walPath
			if *clusterN > 1 {
				path = fmt.Sprintf("%s.%d", path, i)
			}
			opts := store.WALOptions{Sync: true, Metrics: reg}
			if *walShards > 1 {
				wal, err := store.OpenSharded(path, *walShards, opts)
				if err != nil {
					return nil, err
				}
				walClosers = append(walClosers, wal.Close)
				stable = wal
			} else {
				wal, err := store.OpenWAL(path, opts)
				if err != nil {
					return nil, err
				}
				walClosers = append(walClosers, wal.Close)
				stable = wal
			}
		}
		bo := broker.Options{Name: name, Profile: profile, Stable: stable, Metrics: reg}
		if spans != nil {
			// Assign only when non-nil: a typed-nil *obs.Spans in the
			// interface field would defeat broker.New's NopSpans guard.
			bo.Spans = spans
		}
		return broker.New(bo)
	}

	var provider jms.ConnectionFactory
	var clu *cluster.Cluster
	if *clusterN == 1 {
		b, err := newBroker(*name, 0)
		if err != nil {
			return err
		}
		defer b.Close()
		provider = b
	} else if *replicate {
		place, err := cluster.PlacementByName(*placementName, *clusterN)
		if err != nil {
			return err
		}
		ro := replica.Options{
			Profile:           profile,
			Placement:         place,
			Metrics:           reg,
			ReplicationFactor: *replFactor,
			QuorumSize:        *quorum,
		}
		if spans != nil {
			// Same typed-nil caution as broker.Options.Spans below.
			ro.Spans = spans
		}
		if *walPath != "" {
			// Each node's WAL publishes its committed records to the
			// stream its replication links ship from. The manager owns
			// the stores and closes them on shutdown.
			ro.OpenStore = func(i int) (store.Store, *store.Stream, error) {
				stream := store.NewStream()
				wal, err := store.OpenWAL(fmt.Sprintf("%s.%d", *walPath, i),
					store.WALOptions{Sync: true, Metrics: reg, Stream: stream})
				if err != nil {
					return nil, nil, err
				}
				return wal, stream, nil
			}
		}
		m, err := replica.NewLocal(*clusterN, ro)
		if err != nil {
			return err
		}
		defer m.Close()
		clu = m.Cluster()
		provider = clu
	} else {
		place, err := cluster.PlacementByName(*placementName, *clusterN)
		if err != nil {
			return err
		}
		nodes := make([]cluster.Node, 0, *clusterN)
		for i := 0; i < *clusterN; i++ {
			b, err := newBroker(fmt.Sprintf("%s-%d", *name, i), i)
			if err != nil {
				return err
			}
			defer b.Close()
			nodes = append(nodes, cluster.Node{Name: b.Name(), Factory: b})
		}
		co := cluster.Options{Nodes: nodes, Placement: place, Metrics: reg}
		if spans != nil {
			// Same typed-nil caution as broker.Options.Spans above.
			co.Spans = spans
		}
		clu, err = cluster.New(co)
		if err != nil {
			return err
		}
		defer clu.Close()
		provider = clu
	}

	srv, err := wire.NewServer(provider, *addr)
	if err != nil {
		return err
	}
	srv.WithMetrics(reg)
	if spans != nil {
		srv.WithSpans(spans)
	}
	if *obsAddr != "" {
		h := obs.NewHandler(reg)
		h.HandleJSON("/spanz", func() any { return spans.Snapshot() })
		if clu != nil {
			h.HandleJSON("/clusterz", func() any { return clu.Status() })
		}
		ohs, err := obs.NewHTTPServer(*obsAddr, h)
		if err != nil {
			return err
		}
		defer ohs.Close()
		fmt.Printf("jmsbrokerd: observability on http://%s/metricz\n", ohs.Addr())
	}
	if clu != nil {
		mode := "cluster"
		if *replicate {
			mode = "replicated cluster"
		}
		fmt.Printf("jmsbrokerd: serving %d-node %s %s (%s profile) on %s\n",
			*clusterN, *placementName, mode, profile.Name, srv.Addr())
	} else {
		fmt.Printf("jmsbrokerd: serving %s profile on %s\n", profile.Name, srv.Addr())
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	errCh := make(chan error, 1)
	go func() { errCh <- srv.Serve() }()
	select {
	case <-sig:
		fmt.Println("jmsbrokerd: shutting down")
		return srv.Close()
	case err := <-errCh:
		return err
	}
}
