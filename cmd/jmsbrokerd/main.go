// Command jmsbrokerd runs the reference JMS provider behind the wire
// protocol, so harness daemons on other processes or machines can test
// it over TCP:
//
//	jmsbrokerd -addr 127.0.0.1:7800 -profile provider-I
//
// With -wal the broker's stable store is a write-ahead log on disk, so
// persistent messages and durable subscriptions survive process
// restarts.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"jmsharness/internal/broker"
	"jmsharness/internal/store"
	"jmsharness/internal/wire"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "jmsbrokerd:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("jmsbrokerd", flag.ContinueOnError)
	addr := fs.String("addr", "127.0.0.1:7800", "listen address")
	profileName := fs.String("profile", "unlimited", "performance profile: unlimited, provider-I, provider-II, provider-A/B/C")
	name := fs.String("name", "brokerd", "broker name (prefixes message IDs)")
	walPath := fs.String("wal", "", "write-ahead log path for the stable store (empty: in-memory)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	profile, err := broker.ProfileByName(*profileName)
	if err != nil {
		return err
	}
	var stable store.Store
	if *walPath != "" {
		wal, err := store.OpenWAL(*walPath, store.WALOptions{Sync: true})
		if err != nil {
			return err
		}
		defer wal.Close()
		stable = wal
	}
	b, err := broker.New(broker.Options{Name: *name, Profile: profile, Stable: stable})
	if err != nil {
		return err
	}
	defer b.Close()

	srv, err := wire.NewServer(b, *addr)
	if err != nil {
		return err
	}
	fmt.Printf("jmsbrokerd: serving %s profile on %s\n", profile.Name, srv.Addr())

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	errCh := make(chan error, 1)
	go func() { errCh <- srv.Serve() }()
	select {
	case <-sig:
		fmt.Println("jmsbrokerd: shutting down")
		return srv.Close()
	case err := <-errCh:
		return err
	}
}
