// Command jmsprince is the daemon prince (Figure 4 of the paper): it
// schedules a suite of tests across the connected test daemons, keeps
// them coordinated, collects and merges the logs (with NTP-style clock
// correction), stores them in the results database, and prints the
// conformance and performance reports:
//
//	jmsprince -daemons 127.0.0.1:7901,127.0.0.1:7902 -db results.json
//
// While tests run, the prince polls each daemon's metrics and prints a
// live progress line per second. With -obs-addr it also serves its own
// suite-level counters over HTTP (/metricz, /healthz, /debug/pprof).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"jmsharness/internal/core"
	"jmsharness/internal/daemon"
	"jmsharness/internal/harness"
	"jmsharness/internal/jms"
	"jmsharness/internal/obs"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "jmsprince:", err)
		os.Exit(1)
	}
}

// suite returns the stock test schedule: the paper's harness "manages a
// series of tests and analyses the results".
func suite(runSecs float64) []harness.Config {
	run := time.Duration(runSecs * float64(time.Second))
	warm := run / 5
	return []harness.Config{
		{
			Name:        "queue-basic",
			Destination: jms.Queue("suite.orders"),
			Producers: []harness.ProducerConfig{
				{ID: "p1", Rate: 200, BodySize: 512},
				{ID: "p2", Rate: 200, BodySize: 512},
			},
			Consumers: []harness.ConsumerConfig{{ID: "c1"}, {ID: "c2"}},
			Warmup:    warm, Run: run, Warmdown: warm * 2,
		},
		{
			Name:        "pubsub-durable",
			Destination: jms.Topic("suite.prices"),
			Producers:   []harness.ProducerConfig{{ID: "pub", Rate: 200, BodySize: 256}},
			Consumers: []harness.ConsumerConfig{
				{ID: "sub1"},
				{ID: "dur1", Durable: true, SubName: "audit", ClientID: "suite-client"},
			},
			Warmup: warm, Run: run, Warmdown: warm * 2,
		},
		{
			Name:        "transactions",
			Destination: jms.Queue("suite.tx"),
			Producers: []harness.ProducerConfig{
				{ID: "txp", Rate: 200, BodySize: 256, Transacted: true, TxBatch: 5, AbortEvery: 4},
			},
			Consumers: []harness.ConsumerConfig{{ID: "txc", Transacted: true, TxBatch: 3}},
			Warmup:    warm, Run: run, Warmdown: warm * 2,
		},
		{
			Name:        "priority-and-expiry",
			Destination: jms.Queue("suite.qos"),
			Producers: []harness.ProducerConfig{
				{ID: "qp", Rate: 300, BodySize: 128,
					Priorities: []jms.Priority{1, 9},
					// The TTL must sit clearly above the stack's delivery
					// delay: the expectation model is a step function at the
					// observed mean, and loopback wire stacks deliver in
					// ~1ms (replicated clusters add a semisync round trip),
					// so a 1ms TTL would flip the verdict on scheduler
					// noise. 25ms is unambiguous on any local stack and the
					// check still catches over-eager expiry.
					TTLs: []time.Duration{0, 25 * time.Millisecond}},
			},
			Consumers: []harness.ConsumerConfig{{ID: "qc"}},
			Warmup:    warm, Run: run, Warmdown: warm * 2,
		},
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("jmsprince", flag.ContinueOnError)
	daemons := fs.String("daemons", "127.0.0.1:7901", "comma-separated daemon RPC addresses")
	dbPath := fs.String("db", "", "write the results database (JSON) here")
	runSecs := fs.Float64("run", 2.0, "run-period seconds per test")
	allowDup := fs.Bool("allow-duplicates", false, "relax the duplicate check (dups-ok consumers)")
	progress := fs.Bool("progress", true, "print a live progress line per second while tests run")
	obsAddr := fs.String("obs-addr", "", "HTTP observability address (/metricz, /healthz, /debug/pprof); empty: disabled")
	if err := fs.Parse(args); err != nil {
		return err
	}

	reg := obs.NewRegistry()
	testsRun := reg.Counter("prince.tests_run")
	testsFailed := reg.Counter("prince.tests_failed")
	testsActive := reg.Gauge("prince.tests_active")
	if *obsAddr != "" {
		ohs, err := obs.NewHTTPServer(*obsAddr, obs.NewHandler(reg))
		if err != nil {
			return err
		}
		defer ohs.Close()
		fmt.Printf("jmsprince: observability on http://%s/metricz\n", ohs.Addr())
	}

	addrs := strings.Split(*daemons, ",")
	prince, err := daemon.NewPrince(addrs, nil, nil)
	if err != nil {
		return err
	}
	defer prince.Close()
	if *progress {
		prince.Progress = func(line string) { fmt.Println("jmsprince: " + line) }
	}
	for _, d := range prince.Daemons() {
		fmt.Printf("jmsprince: connected to %s\n", d.Name())
	}
	if err := prince.SyncClocks(8); err != nil {
		return err
	}
	for _, d := range prince.Daemons() {
		fmt.Printf("jmsprince: clock offset of %s: %v\n", d.Name(), d.Offset())
	}

	opts := core.DefaultOptions()
	opts.Model.AllowDuplicates = *allowDup
	failures := 0
	for _, cfg := range suite(*runSecs) {
		fmt.Printf("\njmsprince: scheduling %s\n", cfg.Name)
		testsActive.Inc()
		res, err := prince.RunAndAnalyze(cfg, opts)
		testsActive.Dec()
		testsRun.Inc()
		if err != nil {
			testsFailed.Inc()
			return fmt.Errorf("running %s: %w", cfg.Name, err)
		}
		fmt.Print(res)
		if !res.OK() {
			testsFailed.Inc()
			failures++
		}
	}
	if *dbPath != "" {
		if err := prince.DB().SaveFile(*dbPath); err != nil {
			return err
		}
		fmt.Printf("\njmsprince: results database written to %s\n", *dbPath)
	}
	if failures > 0 {
		return fmt.Errorf("%d test(s) violated the specification", failures)
	}
	fmt.Println("\njmsprince: all tests conform")
	return nil
}
