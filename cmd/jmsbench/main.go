// Command jmsbench regenerates every figure and reported result of the
// paper's evaluation, printing the same rows/series the paper plots:
//
//	jmsbench -experiment fig2          # Figure 2: Provider I throughput
//	jmsbench -experiment fig3          # Figure 3: Provider II throughput
//	jmsbench -experiment all -scale 1  # everything, full-length runs
//
// Experiments: fig1 (ordering-violation detection), fig2, fig3,
// measures (§3.2 performance block), compare (footnote-9 three-provider
// comparison), conformance (fault-detection matrix), ingest (§4.1
// DB-vs-streaming analysis). -scale multiplies the run durations;
// 1.0 matches the defaults used in EXPERIMENTS.md.
package main

import (
	"flag"
	"fmt"
	"os"

	"jmsharness/internal/experiments"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "jmsbench:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("jmsbench", flag.ContinueOnError)
	experiment := fs.String("experiment", "all", "fig1, fig2, fig3, measures, compare, conformance, ingest, or all")
	scale := fs.Float64("scale", 1.0, "duration multiplier for the timed experiments")
	csv := fs.Bool("csv", false, "emit throughput sweeps as CSV instead of a table")
	ingestEvents := fs.Int("ingest-events", 300_000, "synthetic trace size for the ingest experiment")
	if err := fs.Parse(args); err != nil {
		return err
	}

	runners := map[string]func() error{
		"fig1": func() error { return runFig1(*scale) },
		"fig2": func() error {
			return runSweep("Figure 2: Provider I (flat saturation)", experiments.Figure2Options(*scale), *csv)
		},
		"fig3": func() error {
			return runSweep("Figure 3: Provider II (overload droop)", experiments.Figure3Options(*scale), *csv)
		},
		"measures":    func() error { return runMeasures(*scale) },
		"compare":     func() error { return runCompare(*scale) },
		"conformance": func() error { return runConformance(*scale) },
		"ingest":      func() error { return runIngest(*ingestEvents) },
	}
	if *experiment == "all" {
		for _, name := range []string{"fig1", "fig2", "fig3", "measures", "compare", "conformance", "ingest"} {
			if err := runners[name](); err != nil {
				return fmt.Errorf("%s: %w", name, err)
			}
			fmt.Println()
		}
		return nil
	}
	runner, ok := runners[*experiment]
	if !ok {
		return fmt.Errorf("unknown experiment %q", *experiment)
	}
	return runner()
}

func runFig1(scale float64) error {
	fmt.Println("=== Figure 1: message-ordering violation scenario ===")
	res, err := experiments.Figure1(scale)
	if err != nil {
		return err
	}
	fmt.Printf("ordering violations detected: %d\n", res.Violations)
	if res.Example != "" {
		fmt.Printf("example: %s\n", res.Example)
	}
	return nil
}

func runSweep(title string, opts experiments.SweepOptions, csv bool) error {
	fmt.Printf("=== %s ===\n", title)
	points, err := experiments.ThroughputSweep(opts)
	if err != nil {
		return err
	}
	if csv {
		fmt.Print(experiments.FormatThroughputCSV(points))
		return nil
	}
	fmt.Print(experiments.FormatThroughputTable(
		fmt.Sprintf("profile=%s msg=%dB run=%v", opts.Profile.Name, opts.MsgSize, opts.Run), points))
	return nil
}

func runMeasures(scale float64) error {
	fmt.Println("=== §3.2 performance measures ===")
	res, err := experiments.PerformanceMeasures(scale)
	if err != nil {
		return err
	}
	fmt.Print(res.Measures.String())
	fmt.Printf("conformance: ok=%t\n", res.Conformance.OK())
	return nil
}

func runCompare(scale float64) error {
	fmt.Println("=== footnote 9: three-provider comparison ===")
	rows, err := experiments.ProviderComparison(scale)
	if err != nil {
		return err
	}
	fmt.Print(experiments.FormatComparison(rows))
	if len(rows) == 3 && rows[2].SubscriberMsgs > 0 {
		fmt.Printf("fastest/slowest subscriber throughput ratio: %.1fx\n",
			rows[0].SubscriberMsgs/rows[2].SubscriberMsgs)
	}
	return nil
}

func runConformance(scale float64) error {
	fmt.Println("=== fault-detection matrix (properties 1-5) ===")
	rows, err := experiments.ConformanceMatrix(scale)
	if err != nil {
		return err
	}
	fmt.Print(experiments.FormatConformance(rows))
	return nil
}

func runIngest(events int) error {
	fmt.Println("=== §4.1: results-database ingest vs streaming aggregation ===")
	res, err := experiments.IngestComparison(events)
	if err != nil {
		return err
	}
	fmt.Print(experiments.FormatIngest(res))
	return nil
}
