// Command jmsbench regenerates every figure and reported result of the
// paper's evaluation, printing the same rows/series the paper plots:
//
//	jmsbench -experiment fig2          # Figure 2: Provider I throughput
//	jmsbench -experiment fig3          # Figure 3: Provider II throughput
//	jmsbench -experiment all -scale 1  # everything, full-length runs
//
// Experiments: fig1 (ordering-violation detection), fig2, fig3,
// measures (§3.2 performance block), compare (footnote-9 three-provider
// comparison), conformance (fault-detection matrix), ingest (§4.1
// DB-vs-streaming analysis), scale (cluster throughput/delay vs shard
// count; -placement picks the sharding policy), saturation (unthrottled
// single-node capacity per stack and shard count, with the group-commit
// batch histogram), chaos (conformance over a fault-injecting TCP proxy
// — latency, bandwidth caps, partitions, resets — with reconnecting
// clients), failover (replicated cluster under steady persistent load
// with a permanent mid-run primary kill: unavailability window, MTTR
// and full conformance through the promotion), quorum (failover at
// R=2/Q=2 with the primary's preferred replication link partitioned
// before the kill: the second follower must cover everything ever
// acked, gated on zero safety violations). -scale multiplies the
// run durations; 1.0 matches the defaults used in EXPERIMENTS.md.
//
// Alongside the human-readable report, each invocation appends a
// machine-readable snapshot to the -json-dir directory as BENCH_<n>.json
// (n one past the highest existing file), so the repo's performance
// trajectory is tracked across changes. -json-dir "" disables it.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"jmsharness/internal/experiments"
	"jmsharness/internal/obs"
	"jmsharness/internal/qos"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "jmsbench:", err)
		os.Exit(1)
	}
}

// benchReport is the machine-readable BENCH_<n>.json payload. Every
// experiment that ran contributes one entry keyed by its name.
// ClusterNodes and PlacementPolicy make reports comparable across
// cluster topologies: single-provider runs report 1/"single", the
// scale experiment reports its largest federation and policy.
type benchReport struct {
	Timestamp       time.Time `json:"timestamp"`
	Experiment      string    `json:"experiment"`
	Scale           float64   `json:"scale"`
	ClusterNodes    int       `json:"cluster_nodes"`
	PlacementPolicy string    `json:"placement_policy"`
	// QoSSlack is the JMSQOS_SLACK factor the run's contracts were
	// widened by; QoSFailures lists every violated contract check, one
	// "experiment: kind, kind" entry per failing report. A non-empty
	// list makes jmsbench exit non-zero (after writing this report).
	QoSSlack    float64        `json:"qos_slack"`
	QoSFailures []string       `json:"qos_failures,omitempty"`
	Experiments map[string]any `json:"experiments"`
}

// gate records a QoS verdict: a nil or passing report is quiet, a
// failing one is printed and queued to fail the process at exit.
func (r *benchReport) gate(where string, rep *qos.Report) {
	if rep == nil {
		return
	}
	if !rep.OK() {
		fmt.Printf("QOS FAIL %s: %s\n%s", where, strings.Join(rep.Violated(), ", "), rep.String())
		r.QoSFailures = append(r.QoSFailures, where+": "+strings.Join(rep.Violated(), ", "))
	}
}

// measuresSummary is the compact perf-trajectory record for the §3.2
// block: throughput, delay mean/stddev, fairness.
type measuresSummary struct {
	ProducerMsgsPerSec   float64       `json:"producer_msgs_per_sec"`
	ConsumerMsgsPerSec   float64       `json:"consumer_msgs_per_sec"`
	ProducerBytesPerSec  float64       `json:"producer_bytes_per_sec"`
	ConsumerBytesPerSec  float64       `json:"consumer_bytes_per_sec"`
	DelayMean            time.Duration `json:"delay_mean_ns"`
	DelayStdDev          time.Duration `json:"delay_stddev_ns"`
	DelayP95             time.Duration `json:"delay_p95_ns"`
	ProducerUnfairness   time.Duration `json:"producer_unfairness_ns"`
	ConsumerUnfairness   time.Duration `json:"consumer_unfairness_ns"`
	ConformanceOK        bool          `json:"conformance_ok"`
	MeasuredMessageCount int64         `json:"measured_message_count"`
	QoS                  *qos.Report   `json:"qos,omitempty"`
}

func run(args []string) error {
	fs := flag.NewFlagSet("jmsbench", flag.ContinueOnError)
	experiment := fs.String("experiment", "all", "fig1, fig2, fig3, measures, compare, conformance, ingest, scale, saturation, chaos, failover, quorum, or all")
	scale := fs.Float64("scale", 1.0, "duration multiplier for the timed experiments")
	csv := fs.Bool("csv", false, "emit throughput sweeps as CSV instead of a table")
	ingestEvents := fs.Int("ingest-events", 300_000, "synthetic trace size for the ingest experiment")
	placement := fs.String("placement", "hash-ring", "cluster placement policy for the scale experiment (hash-ring, modulo)")
	jsonDir := fs.String("json-dir", ".", "directory for the machine-readable BENCH_<n>.json report (empty: disabled)")
	traceOut := fs.String("trace-out", "", "JSONL span export path for the saturation experiment (empty: tracing off)")
	traceSample := fs.Float64("trace-sample", 1.0, "head-based trace sampling fraction for -trace-out (0,1]")
	if err := fs.Parse(args); err != nil {
		return err
	}

	report := &benchReport{
		Timestamp:       time.Now().UTC(),
		Experiment:      *experiment,
		Scale:           *scale,
		ClusterNodes:    1,
		PlacementPolicy: "single",
		QoSSlack:        qos.SlackFromEnv(),
		Experiments:     map[string]any{},
	}

	runners := map[string]func() error{
		"fig1": func() error { return runFig1(*scale, report) },
		"fig2": func() error {
			return runSweep("fig2", "Figure 2: Provider I (flat saturation)", experiments.Figure2Options(*scale), *csv, report)
		},
		"fig3": func() error {
			return runSweep("fig3", "Figure 3: Provider II (overload droop)", experiments.Figure3Options(*scale), *csv, report)
		},
		"measures":    func() error { return runMeasures(*scale, report) },
		"compare":     func() error { return runCompare(*scale, report) },
		"conformance": func() error { return runConformance(*scale, report) },
		"ingest":      func() error { return runIngest(*ingestEvents, report) },
		"scale":       func() error { return runScale(*scale, *placement, report) },
		"saturation":  func() error { return runSaturation(*scale, *traceOut, *traceSample, report) },
		"chaos":       func() error { return runChaos(*scale, report) },
		"failover":    func() error { return runFailover(*scale, report) },
		"quorum":      func() error { return runQuorum(*scale, report) },
	}
	if *experiment == "all" {
		for _, name := range []string{"fig1", "fig2", "fig3", "measures", "compare", "conformance", "ingest", "scale", "saturation", "chaos", "failover", "quorum"} {
			if err := runners[name](); err != nil {
				return fmt.Errorf("%s: %w", name, err)
			}
			fmt.Println()
		}
	} else {
		runner, ok := runners[*experiment]
		if !ok {
			return fmt.Errorf("unknown experiment %q", *experiment)
		}
		if err := runner(); err != nil {
			return err
		}
	}
	if err := writeReport(*jsonDir, report); err != nil {
		return err
	}
	// The QoS gate: the report (with the embedded verdicts) is written
	// either way, but a violated contract fails the invocation.
	if len(report.QoSFailures) > 0 {
		return fmt.Errorf("qos contract violations:\n  %s", strings.Join(report.QoSFailures, "\n  "))
	}
	return nil
}

// nextBenchPath scans dir for BENCH_<n>.json files and returns the path
// one past the highest n, starting at BENCH_1.json.
func nextBenchPath(dir string) (string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return "", err
	}
	max := 0
	for _, e := range entries {
		var n int
		if _, err := fmt.Sscanf(e.Name(), "BENCH_%d.json", &n); err == nil && n > max {
			max = n
		}
	}
	return filepath.Join(dir, fmt.Sprintf("BENCH_%d.json", max+1)), nil
}

// writeReport persists the machine-readable report, if enabled.
func writeReport(dir string, report *benchReport) error {
	if dir == "" {
		return nil
	}
	path, err := nextBenchPath(dir)
	if err != nil {
		return fmt.Errorf("choosing report path: %w", err)
	}
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return fmt.Errorf("encoding report: %w", err)
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return fmt.Errorf("writing report: %w", err)
	}
	fmt.Printf("machine-readable report written to %s\n", path)
	return nil
}

func runFig1(scale float64, report *benchReport) error {
	fmt.Println("=== Figure 1: message-ordering violation scenario ===")
	res, err := experiments.Figure1(scale)
	if err != nil {
		return err
	}
	fmt.Printf("ordering violations detected: %d\n", res.Violations)
	if res.Example != "" {
		fmt.Printf("example: %s\n", res.Example)
	}
	report.Experiments["fig1"] = res
	return nil
}

func runSweep(key, title string, opts experiments.SweepOptions, csv bool, report *benchReport) error {
	fmt.Printf("=== %s ===\n", title)
	points, err := experiments.ThroughputSweep(opts)
	if err != nil {
		return err
	}
	if csv {
		fmt.Print(experiments.FormatThroughputCSV(points))
	} else {
		fmt.Print(experiments.FormatThroughputTable(
			fmt.Sprintf("profile=%s msg=%dB run=%v", opts.Profile.Name, opts.MsgSize, opts.Run), points))
	}
	report.Experiments[key] = map[string]any{
		"profile": opts.Profile.Name,
		"points":  points,
	}
	return nil
}

func runMeasures(scale float64, report *benchReport) error {
	fmt.Println("=== §3.2 performance measures ===")
	res, err := experiments.PerformanceMeasures(scale)
	if err != nil {
		return err
	}
	fmt.Print(res.Measures.String())
	fmt.Printf("conformance: ok=%t\n", res.Conformance.OK())
	if res.QoS != nil {
		fmt.Print(res.QoS.String())
	}
	report.gate("measures", res.QoS)
	m := res.Measures
	report.Experiments["measures"] = measuresSummary{
		ProducerMsgsPerSec:   m.Producer.PerSecond,
		ConsumerMsgsPerSec:   m.Consumer.PerSecond,
		ProducerBytesPerSec:  m.Producer.BytesPerSecond,
		ConsumerBytesPerSec:  m.Consumer.BytesPerSecond,
		DelayMean:            m.Delay.Mean,
		DelayStdDev:          m.Delay.StdDev,
		DelayP95:             m.Delay.P95,
		ProducerUnfairness:   m.Fairness.ProducerUnfairness,
		ConsumerUnfairness:   m.Fairness.ConsumerUnfairness,
		ConformanceOK:        res.Conformance.OK(),
		MeasuredMessageCount: m.Delay.N,
		QoS:                  res.QoS,
	}
	return nil
}

func runCompare(scale float64, report *benchReport) error {
	fmt.Println("=== footnote 9: three-provider comparison ===")
	rows, err := experiments.ProviderComparison(scale)
	if err != nil {
		return err
	}
	fmt.Print(experiments.FormatComparison(rows))
	if len(rows) == 3 && rows[2].SubscriberMsgs > 0 {
		fmt.Printf("fastest/slowest subscriber throughput ratio: %.1fx\n",
			rows[0].SubscriberMsgs/rows[2].SubscriberMsgs)
	}
	report.Experiments["compare"] = rows
	return nil
}

func runConformance(scale float64, report *benchReport) error {
	fmt.Println("=== fault-detection matrix (properties 1-5) ===")
	rows, err := experiments.ConformanceMatrix(scale)
	if err != nil {
		return err
	}
	fmt.Print(experiments.FormatConformance(rows))
	report.Experiments["conformance"] = rows
	return nil
}

func runScale(scale float64, placement string, report *benchReport) error {
	fmt.Println("=== cluster scaling: throughput and delay vs shard count ===")
	opts := experiments.ScaleSweepOptions(scale)
	opts.Placement = placement
	points, err := experiments.ScaleSweep(opts)
	if err != nil {
		return err
	}
	fmt.Print(experiments.FormatScaleTable(opts, points))
	for i := 1; i < len(points); i++ {
		if points[i].ConsumerMsgs <= points[i-1].ConsumerMsgs {
			fmt.Printf("warning: throughput did not increase from %d to %d shards\n",
				points[i-1].Nodes, points[i].Nodes)
		}
	}
	for _, p := range points {
		report.gate(fmt.Sprintf("scale/%d-shards", p.Nodes), p.QoS)
	}
	report.Experiments["scale"] = map[string]any{
		"placement": opts.Placement,
		"points":    points,
	}
	for _, p := range points {
		if p.Nodes > report.ClusterNodes {
			report.ClusterNodes = p.Nodes
			report.PlacementPolicy = opts.Placement
		}
	}
	return nil
}

func runSaturation(scale float64, traceOut string, traceSample float64, report *benchReport) error {
	fmt.Println("=== saturation: unthrottled capacity vs shard count ===")
	opts := experiments.SaturationSweepOptions(scale)

	// With -trace-out, every message in the sweep carries trace context
	// and the resulting spans are exported durably, then aggregated into
	// the per-hop latency breakdown the report carries as "per_hop".
	var sink *obs.JSONLSink
	if traceOut != "" {
		reg := obs.NewRegistry()
		spans := obs.NewSpans(reg, obs.DefaultMaxInFlight, obs.DefaultKeep)
		s, err := obs.NewJSONLSink(traceOut, traceSample, reg)
		if err != nil {
			return fmt.Errorf("opening span export: %w", err)
		}
		sink = s
		spans.Tee(sink)
		opts.Spans = spans
	}

	points, err := experiments.SaturationSweep(opts)
	if sink != nil {
		if cerr := sink.Close(); cerr != nil && err == nil {
			err = fmt.Errorf("span export: %w", cerr)
		}
	}
	if err != nil {
		return err
	}
	fmt.Print(experiments.FormatSaturationTable(opts, points))
	for _, p := range points {
		report.gate(fmt.Sprintf("saturation/%s/%d-shards", p.Stack, p.Shards), p.QoS)
	}
	sat := map[string]any{
		"points":   points,
		"baseline": experiments.SaturationBaseline,
	}
	if traceOut != "" {
		spans, err := obs.ReadSpanFile(traceOut)
		if err != nil {
			return fmt.Errorf("reading span export: %w", err)
		}
		hb := experiments.AggregateSpans(spans)
		fmt.Print(experiments.FormatHopBreakdown(hb))
		fmt.Printf("span export written to %s (%d spans, %d dropped)\n", traceOut, len(spans), sink.Dropped())
		sat["per_hop"] = hb
		hopRep, err := experiments.HopContract().WithSlack(qos.SlackFromEnv()).
			EvaluateHops(experiments.HopSetFromBreakdown(hb))
		if err != nil {
			return fmt.Errorf("evaluating hop contract: %w", err)
		}
		fmt.Print(hopRep.String())
		sat["per_hop_qos"] = hopRep
		report.gate("saturation/per-hop", hopRep)
	}
	report.Experiments["saturation"] = sat
	return nil
}

func runChaos(scale float64, report *benchReport) error {
	fmt.Println("=== chaos: conformance under injected network faults ===")
	rows, err := experiments.ChaosMatrix(scale)
	if err != nil {
		return err
	}
	fmt.Print(experiments.FormatChaos(rows))
	for _, r := range rows {
		if !r.Passed {
			fmt.Printf("warning: profile %s violated %d safety properties\n", r.Profile, r.Violations)
		}
		report.gate("chaos/"+r.Profile, r.QoS)
	}
	report.Experiments["chaos"] = rows
	return nil
}

func runFailover(scale float64, report *benchReport) error {
	fmt.Println("=== failover: replicated cluster, permanent primary kill mid-run ===")
	res, err := experiments.Failover(scale)
	if err != nil {
		return err
	}
	fmt.Print(experiments.FormatFailover(res))
	if !res.Passed {
		fmt.Printf("warning: failover run violated %d safety properties\n", res.Violations)
	}
	if res.QoS != nil {
		fmt.Print(res.QoS.String())
	}
	report.gate("failover", res.QoS)
	report.Experiments["failover"] = res
	return nil
}

func runQuorum(scale float64, report *benchReport) error {
	fmt.Println("=== quorum: R=2 failover with a partitioned replication link ===")
	res, err := experiments.Quorum(scale)
	if err != nil {
		return err
	}
	fmt.Print(experiments.FormatQuorum(res))
	if res.QoS != nil {
		fmt.Print(res.QoS.String())
	}
	report.gate("quorum", res.QoS)
	// Safety is the whole point of the second follower: a violation here
	// means acked messages died with the primary despite R=2, so it fails
	// the invocation just like a contract breach.
	if !res.Passed {
		fmt.Printf("SAFETY FAIL quorum: %d violations (%s)\n",
			res.Violations, strings.Join(res.ViolatedProperties, ", "))
		report.QoSFailures = append(report.QoSFailures,
			"quorum: safety "+strings.Join(res.ViolatedProperties, ", "))
	}
	report.Experiments["quorum"] = res
	return nil
}

func runIngest(events int, report *benchReport) error {
	fmt.Println("=== §4.1: results-database ingest vs streaming aggregation ===")
	res, err := experiments.IngestComparison(events)
	if err != nil {
		return err
	}
	fmt.Print(experiments.FormatIngest(res))
	report.Experiments["ingest"] = res
	return nil
}
