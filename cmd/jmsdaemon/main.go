// Command jmsdaemon runs one test daemon (Figure 4 of the paper): it
// accepts test configurations from the daemon prince over RPC, runs
// them against the provider reached through the wire protocol, and
// returns the execution logs:
//
//	jmsdaemon -addr 127.0.0.1:7901 -broker 127.0.0.1:7800 -name daemon-A
//
// -broker accepts a comma-separated list of wire addresses; more than
// one federates the remote brokers client-side into a sharded cluster
// (-placement picks the destination sharding policy), and the daemon
// tests the federation as a single provider.
//
// With -obs-addr the daemon serves its run-lifecycle and harness
// progress metrics over HTTP (/metricz, /healthz, /debug/pprof), plus
// /clusterz with topology and per-node routing when federating.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"jmsharness/internal/cluster"
	"jmsharness/internal/daemon"
	"jmsharness/internal/jms"
	"jmsharness/internal/obs"
	"jmsharness/internal/wire"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "jmsdaemon:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("jmsdaemon", flag.ContinueOnError)
	addr := fs.String("addr", "127.0.0.1:7901", "RPC listen address")
	brokerAddrs := fs.String("broker", "127.0.0.1:7800", "comma-separated wire addresses of the provider(s) under test; >1 federates them client-side")
	placementName := fs.String("placement", "hash-ring", "destination sharding policy when federating: hash-ring, modulo")
	name := fs.String("name", "", "daemon name (default: listen address)")
	obsAddr := fs.String("obs-addr", "", "HTTP observability address (/metricz, /spanz, /healthz, /debug/pprof); empty: disabled")
	traceOut := fs.String("trace-out", "", "durable JSONL span export path for client-side send RPCs (empty: disabled)")
	traceSample := fs.Float64("trace-sample", 1.0, "head-based trace sampling fraction for -trace-out (0,1]")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *name == "" {
		*name = *addr
	}

	// Client-side trace hops: each wire factory records send-RPC spans,
	// and the federation layer records forward hops, so the daemon's
	// export shows wire RTT from the test side even when the broker's
	// own export is elsewhere.
	var spans *obs.Spans
	var sinkReg *obs.Registry
	if *obsAddr != "" || *traceOut != "" {
		sinkReg = obs.NewRegistry()
		spans = obs.NewSpans(sinkReg, obs.DefaultMaxInFlight, obs.DefaultKeep)
	}
	if *traceOut != "" {
		sink, err := obs.NewJSONLSink(*traceOut, *traceSample, sinkReg)
		if err != nil {
			return fmt.Errorf("opening span export: %w", err)
		}
		defer sink.Close()
		spans.Tee(sink)
		fmt.Printf("jmsdaemon: exporting spans to %s (sample %.2f)\n", *traceOut, *traceSample)
	}

	var addrs []string
	for _, a := range strings.Split(*brokerAddrs, ",") {
		if a = strings.TrimSpace(a); a != "" {
			addrs = append(addrs, a)
		}
	}
	if len(addrs) == 0 {
		return fmt.Errorf("-broker needs at least one wire address")
	}
	newFactory := func(a string) *wire.Factory {
		f := wire.NewFactory(a)
		if spans != nil {
			f.WithSpans(spans)
		}
		return f
	}
	var provider jms.ConnectionFactory
	var clu *cluster.Cluster
	if len(addrs) == 1 {
		provider = newFactory(addrs[0])
	} else {
		place, err := cluster.PlacementByName(*placementName, len(addrs))
		if err != nil {
			return err
		}
		nodes := make([]cluster.Node, len(addrs))
		for i, a := range addrs {
			nodes[i] = cluster.Node{Name: a, Factory: newFactory(a)}
		}
		co := cluster.Options{Nodes: nodes, Placement: place}
		if spans != nil {
			// Assign only when non-nil: a typed-nil *obs.Spans in the
			// interface field would defeat cluster.New's NopSpans guard.
			co.Spans = spans
		}
		clu, err = cluster.New(co)
		if err != nil {
			return err
		}
		defer clu.Close()
		provider = clu
	}

	d := daemon.NewDaemon(*name, provider, nil)
	bound, err := d.Listen(*addr)
	if err != nil {
		return err
	}
	defer d.Close()
	if *obsAddr != "" {
		h := obs.NewHandler(d.Metrics())
		if spans != nil {
			h.HandleJSON("/spanz", func() any { return spans.Snapshot() })
		}
		if clu != nil {
			h.HandleJSON("/clusterz", func() any { return clu.Status() })
		}
		ohs, err := obs.NewHTTPServer(*obsAddr, h)
		if err != nil {
			return err
		}
		defer ohs.Close()
		fmt.Printf("jmsdaemon: observability on http://%s/metricz\n", ohs.Addr())
	}
	if clu != nil {
		fmt.Printf("jmsdaemon: %s serving on %s, testing %d-node %s federation of %s\n",
			*name, bound, len(addrs), *placementName, strings.Join(addrs, ", "))
	} else {
		fmt.Printf("jmsdaemon: %s serving on %s, testing provider at %s\n", *name, bound, addrs[0])
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Println("jmsdaemon: shutting down")
	return nil
}
