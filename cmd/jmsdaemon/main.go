// Command jmsdaemon runs one test daemon (Figure 4 of the paper): it
// accepts test configurations from the daemon prince over RPC, runs
// them against the provider reached through the wire protocol, and
// returns the execution logs:
//
//	jmsdaemon -addr 127.0.0.1:7901 -broker 127.0.0.1:7800 -name daemon-A
//
// -broker accepts a comma-separated list of wire addresses; more than
// one federates the remote brokers client-side into a sharded cluster
// (-placement picks the destination sharding policy), and the daemon
// tests the federation as a single provider.
//
// With -obs-addr the daemon serves its run-lifecycle and harness
// progress metrics over HTTP (/metricz, /healthz, /debug/pprof), plus
// /clusterz with topology and per-node routing when federating.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"jmsharness/internal/cluster"
	"jmsharness/internal/daemon"
	"jmsharness/internal/jms"
	"jmsharness/internal/obs"
	"jmsharness/internal/wire"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "jmsdaemon:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("jmsdaemon", flag.ContinueOnError)
	addr := fs.String("addr", "127.0.0.1:7901", "RPC listen address")
	brokerAddrs := fs.String("broker", "127.0.0.1:7800", "comma-separated wire addresses of the provider(s) under test; >1 federates them client-side")
	placementName := fs.String("placement", "hash-ring", "destination sharding policy when federating: hash-ring, modulo")
	name := fs.String("name", "", "daemon name (default: listen address)")
	obsAddr := fs.String("obs-addr", "", "HTTP observability address (/metricz, /healthz, /debug/pprof); empty: disabled")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *name == "" {
		*name = *addr
	}

	var addrs []string
	for _, a := range strings.Split(*brokerAddrs, ",") {
		if a = strings.TrimSpace(a); a != "" {
			addrs = append(addrs, a)
		}
	}
	if len(addrs) == 0 {
		return fmt.Errorf("-broker needs at least one wire address")
	}
	var provider jms.ConnectionFactory
	var clu *cluster.Cluster
	if len(addrs) == 1 {
		provider = wire.NewFactory(addrs[0])
	} else {
		place, err := cluster.PlacementByName(*placementName, len(addrs))
		if err != nil {
			return err
		}
		nodes := make([]cluster.Node, len(addrs))
		for i, a := range addrs {
			nodes[i] = cluster.Node{Name: a, Factory: wire.NewFactory(a)}
		}
		clu, err = cluster.New(cluster.Options{Nodes: nodes, Placement: place})
		if err != nil {
			return err
		}
		defer clu.Close()
		provider = clu
	}

	d := daemon.NewDaemon(*name, provider, nil)
	bound, err := d.Listen(*addr)
	if err != nil {
		return err
	}
	defer d.Close()
	if *obsAddr != "" {
		h := obs.NewHandler(d.Metrics())
		if clu != nil {
			h.HandleJSON("/clusterz", func() any { return clu.Status() })
		}
		ohs, err := obs.NewHTTPServer(*obsAddr, h)
		if err != nil {
			return err
		}
		defer ohs.Close()
		fmt.Printf("jmsdaemon: observability on http://%s/metricz\n", ohs.Addr())
	}
	if clu != nil {
		fmt.Printf("jmsdaemon: %s serving on %s, testing %d-node %s federation of %s\n",
			*name, bound, len(addrs), *placementName, strings.Join(addrs, ", "))
	} else {
		fmt.Printf("jmsdaemon: %s serving on %s, testing provider at %s\n", *name, bound, addrs[0])
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Println("jmsdaemon: shutting down")
	return nil
}
