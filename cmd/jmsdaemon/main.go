// Command jmsdaemon runs one test daemon (Figure 4 of the paper): it
// accepts test configurations from the daemon prince over RPC, runs
// them against the provider reached through the wire protocol, and
// returns the execution logs:
//
//	jmsdaemon -addr 127.0.0.1:7901 -broker 127.0.0.1:7800 -name daemon-A
//
// With -obs-addr the daemon serves its run-lifecycle and harness
// progress metrics over HTTP (/metricz, /healthz, /debug/pprof).
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"jmsharness/internal/daemon"
	"jmsharness/internal/obs"
	"jmsharness/internal/wire"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "jmsdaemon:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("jmsdaemon", flag.ContinueOnError)
	addr := fs.String("addr", "127.0.0.1:7901", "RPC listen address")
	brokerAddr := fs.String("broker", "127.0.0.1:7800", "wire address of the provider under test")
	name := fs.String("name", "", "daemon name (default: listen address)")
	obsAddr := fs.String("obs-addr", "", "HTTP observability address (/metricz, /healthz, /debug/pprof); empty: disabled")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *name == "" {
		*name = *addr
	}

	d := daemon.NewDaemon(*name, wire.NewFactory(*brokerAddr), nil)
	bound, err := d.Listen(*addr)
	if err != nil {
		return err
	}
	defer d.Close()
	if *obsAddr != "" {
		ohs, err := obs.NewHTTPServer(*obsAddr, obs.NewHandler(d.Metrics()))
		if err != nil {
			return err
		}
		defer ohs.Close()
		fmt.Printf("jmsdaemon: observability on http://%s/metricz\n", ohs.Addr())
	}
	fmt.Printf("jmsdaemon: %s serving on %s, testing provider at %s\n", *name, bound, *brokerAddr)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Println("jmsdaemon: shutting down")
	return nil
}
