// Command jmsanalyze performs offline analysis of saved execution
// traces: it merges per-node log files, checks every safety property of
// the formal model, and prints the §3.2 performance measures:
//
//	jmsanalyze -logs node-a.log,node-b.log -name mytest -histogram
//
// Log files are the JSON-lines format written by the harness
// (trace.Writer). Per-node clock offsets can be supplied as
// node=offset pairs (Go duration syntax) when the logs were recorded on
// unsynchronised machines.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"jmsharness/internal/analysis"
	"jmsharness/internal/core"
	"jmsharness/internal/trace"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "jmsanalyze:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("jmsanalyze", flag.ContinueOnError)
	logs := fs.String("logs", "", "comma-separated trace log files (required)")
	name := fs.String("name", "offline", "test name for the report")
	offsetsFlag := fs.String("offsets", "", "per-node clock offsets, e.g. node-a=1.5ms,node-b=-200us")
	histogram := fs.Bool("histogram", false, "print the delay histogram")
	allowDup := fs.Bool("allow-duplicates", false, "relax the duplicate check (dups-ok consumers)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *logs == "" {
		return fmt.Errorf("-logs is required")
	}

	var nodeLogs [][]trace.Event
	for _, path := range strings.Split(*logs, ",") {
		events, err := trace.ReadLogFile(strings.TrimSpace(path))
		if err != nil {
			return err
		}
		nodeLogs = append(nodeLogs, events)
	}

	offsets := map[string]time.Duration{}
	if *offsetsFlag != "" {
		for _, pair := range strings.Split(*offsetsFlag, ",") {
			node, value, found := strings.Cut(pair, "=")
			if !found {
				return fmt.Errorf("malformed offset %q (want node=duration)", pair)
			}
			d, err := time.ParseDuration(value)
			if err != nil {
				return fmt.Errorf("offset for %s: %w", node, err)
			}
			offsets[node] = d
		}
	}

	tr := trace.Merge(nodeLogs, offsets)
	opts := core.DefaultOptions()
	opts.Model.AllowDuplicates = *allowDup
	if *histogram {
		opts.Analysis = analysis.Options{HistogramBuckets: 30}
	}
	result, err := core.Analyze(*name, tr, opts)
	if err != nil {
		return err
	}
	fmt.Print(result)
	if *histogram && result.Performance.DelayHistogram != nil {
		fmt.Println("--- delay histogram (seconds) ---")
		fmt.Print(result.Performance.DelayHistogram.Render(50))
	}
	if !result.OK() {
		return fmt.Errorf("trace violates the specification")
	}
	return nil
}
