// Command jmsanalyze performs offline analysis of saved execution
// traces: it merges per-node log files, checks every safety property of
// the formal model, and prints the §3.2 performance measures:
//
//	jmsanalyze -logs node-a.log,node-b.log -name mytest -histogram
//
// Log files are the JSON-lines format written by the harness
// (trace.Writer). Per-node clock offsets can be supplied as
// node=offset pairs (Go duration syntax) when the logs were recorded on
// unsynchronised machines.
//
// With -spans the command instead analyses a durable span export (the
// JSONL file written by -trace-out on jmsbrokerd/jmsdaemon/jmsbench):
// it prints the per-hop latency breakdown and, with -min-hops N, fails
// unless at least one trace links N or more causally related spans —
// the CI check that end-to-end trace propagation actually works.
//
// With -contract FILE, a qos.Contract (JSON) is evaluated offline
// against whichever input was given: trace logs judge the trace-based
// checks (delay percentiles, floors, fairness, rejection, failover
// budgets), a span export judges the hop checks (hop-p50/p95/p99 with
// stage-name scopes: enqueue-wait, wal-wait, wire-rtt, forward,
// settle). A violated contract makes the command exit non-zero, same
// as a safety violation. JMSQOS_SLACK applies here too.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"jmsharness/internal/analysis"
	"jmsharness/internal/core"
	"jmsharness/internal/experiments"
	"jmsharness/internal/obs"
	"jmsharness/internal/qos"
	"jmsharness/internal/trace"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "jmsanalyze:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("jmsanalyze", flag.ContinueOnError)
	logs := fs.String("logs", "", "comma-separated trace log files (required)")
	name := fs.String("name", "offline", "test name for the report")
	offsetsFlag := fs.String("offsets", "", "per-node clock offsets, e.g. node-a=1.5ms,node-b=-200us")
	histogram := fs.Bool("histogram", false, "print the delay histogram")
	allowDup := fs.Bool("allow-duplicates", false, "relax the duplicate check (dups-ok consumers)")
	spansPath := fs.String("spans", "", "JSONL span export to analyse instead of trace logs")
	minHops := fs.Int("min-hops", 0, "with -spans: require at least one trace with >= N causally linked spans")
	contractPath := fs.String("contract", "", "qos contract JSON to evaluate against the trace logs or span export")
	if err := fs.Parse(args); err != nil {
		return err
	}
	var contract *qos.Contract
	if *contractPath != "" {
		c, err := qos.LoadContract(*contractPath)
		if err != nil {
			return err
		}
		contract = c.WithSlack(qos.SlackFromEnv())
	}
	if *spansPath != "" {
		return analyzeSpans(*spansPath, *minHops, contract)
	}
	if *logs == "" {
		return fmt.Errorf("-logs or -spans is required")
	}

	var nodeLogs [][]trace.Event
	for _, path := range strings.Split(*logs, ",") {
		events, err := trace.ReadLogFile(strings.TrimSpace(path))
		if err != nil {
			return err
		}
		nodeLogs = append(nodeLogs, events)
	}

	offsets := map[string]time.Duration{}
	if *offsetsFlag != "" {
		for _, pair := range strings.Split(*offsetsFlag, ",") {
			node, value, found := strings.Cut(pair, "=")
			if !found {
				return fmt.Errorf("malformed offset %q (want node=duration)", pair)
			}
			d, err := time.ParseDuration(value)
			if err != nil {
				return fmt.Errorf("offset for %s: %w", node, err)
			}
			offsets[node] = d
		}
	}

	tr := trace.Merge(nodeLogs, offsets)
	opts := core.DefaultOptions()
	opts.Model.AllowDuplicates = *allowDup
	opts.QoS = contract
	if *histogram {
		opts.Analysis = analysis.Options{HistogramBuckets: 30}
	}
	result, err := core.Analyze(*name, tr, opts)
	if err != nil {
		return err
	}
	fmt.Print(result)
	if *histogram && result.Performance.DelayHistogram != nil {
		fmt.Println("--- delay histogram (seconds) ---")
		fmt.Print(result.Performance.DelayHistogram.Render(50))
	}
	if !result.OK() {
		return fmt.Errorf("trace violates the specification")
	}
	return nil
}

// analyzeSpans aggregates a durable span export into the per-hop
// latency breakdown and, when given a contract, judges its hop checks
// against the aggregation. Every line must parse as a span — a
// malformed export is an error, not a partial result.
func analyzeSpans(path string, minHops int, contract *qos.Contract) error {
	spans, err := obs.ReadSpanFile(path)
	if err != nil {
		return err
	}
	hb := experiments.AggregateSpans(spans)
	fmt.Print(experiments.FormatHopBreakdown(hb))
	if minHops > 0 && hb.MaxHops < minHops {
		return fmt.Errorf("no trace links %d spans (deepest trace has %d): trace propagation is broken or sampling discarded every multi-hop trace", minHops, hb.MaxHops)
	}
	if contract != nil {
		rep, err := contract.EvaluateHops(experiments.HopSetFromBreakdown(hb))
		if err != nil {
			return err
		}
		fmt.Print(rep.String())
		if !rep.OK() {
			return fmt.Errorf("span export violates contract %s: %s", rep.Contract, strings.Join(rep.Violated(), ", "))
		}
	}
	return nil
}
