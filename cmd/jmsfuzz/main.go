// Command jmsfuzz runs the randomized conformance explorer from the
// command line: it sweeps seeds upward from -seed, derives a scenario
// from each (topology, workload, provider stack, fault schedule),
// executes it through the harness, and compares the verdict against the
// oracle — clean stacks must violate no safety property, and seeds whose
// residue selects a known-faulty wrapper must be flagged by the matching
// property. Disagreements are shrunk to minimal scenarios and written as
// replayable JSON repro files:
//
//	jmsfuzz -seed 42 -duration 30s
//	jmsfuzz -replay repro-seed-74.json
//
// The exit status is 1 when any finding (or a failed replay) occurred.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"time"

	"jmsharness/internal/explore"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "jmsfuzz:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("jmsfuzz", flag.ContinueOnError)
	seed := fs.Uint64("seed", 1, "first seed of the sweep")
	duration := fs.Duration("duration", 30*time.Second, "wall-clock budget for the sweep")
	maxScenarios := fs.Int("n", 0, "stop after this many scenarios (0 = until -duration)")
	replay := fs.String("replay", "", "replay a scenario JSON file instead of sweeping")
	shrink := fs.Bool("shrink", true, "minimize findings before reporting them")
	shrinkBudget := fs.Int("shrink-budget", 0, "max candidate executions per shrink (0 = default)")
	out := fs.String("out", ".", "directory for repro JSON files")
	quiet := fs.Bool("quiet", false, "suppress per-scenario progress lines")
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *replay != "" {
		return runReplay(*replay)
	}

	logf := func(format string, a ...any) {
		fmt.Printf(format+"\n", a...)
	}
	if *quiet {
		logf = nil
	}
	sum, err := explore.Explore(*seed, explore.Options{
		Duration:     *duration,
		MaxScenarios: *maxScenarios,
		Shrink:       *shrink,
		ShrinkBudget: *shrinkBudget,
		ReproDir:     *out,
		Log:          logf,
	})
	if err != nil {
		return err
	}

	fmt.Printf("\n%d scenarios: %d clean ok, %d faulty flagged, %d qos probes, %d findings\n",
		sum.Scenarios, sum.CleanOK, countFaults(sum.FaultsByKind), sum.QoSProbes, len(sum.Findings))
	covered, all := sum.CoveredFaults()
	faults := make([]string, 0, len(covered))
	for f := range covered {
		faults = append(faults, f)
	}
	sort.Strings(faults)
	for _, f := range faults {
		fmt.Printf("  %-20s flagged %d time(s)\n", f, covered[f])
	}
	if !all {
		fmt.Println("  (sweep too short to cover every fault wrapper; any 12 consecutive seeds do)")
	}
	qosFaults := make([]string, 0, len(sum.QoSByFault))
	for f := range sum.QoSByFault {
		qosFaults = append(qosFaults, f)
	}
	sort.Strings(qosFaults)
	for _, f := range qosFaults {
		fmt.Printf("  qos %-16s flagged %d time(s)\n", f, sum.QoSByFault[f])
	}

	if len(sum.Findings) > 0 {
		for _, f := range sum.Findings {
			fmt.Printf("\nFINDING seed=%d: %s\n", f.Seed, f.Reason)
			if f.ReproPath != "" {
				fmt.Printf("  repro: %s (replay with -replay)\n", f.ReproPath)
			}
			fmt.Print(f.Report)
		}
		return fmt.Errorf("%d finding(s)", len(sum.Findings))
	}
	return nil
}

// runReplay executes one saved scenario and reports whether its verdict
// still disagrees with the oracle.
func runReplay(path string) error {
	sc, err := explore.LoadScenario(path)
	if err != nil {
		return err
	}
	fmt.Printf("replaying %s (seed %d, stack %s", sc.Name, sc.Seed, sc.Stack.Kind)
	if sc.Stack.Fault != explore.FaultNone {
		fmt.Printf(", fault %s", sc.Stack.Fault)
	}
	if sc.Stack.QoSFault != explore.QoSFaultNone {
		fmt.Printf(", qos fault %s", sc.Stack.QoSFault)
	}
	fmt.Printf(", %d workers)\n", sc.Workers())
	res, err := explore.Execute(sc)
	if err != nil {
		return err
	}
	fmt.Print(res.Conformance)
	if res.QoS != nil {
		fmt.Print(res.QoS.String())
	}
	if reason := explore.Unexpected(sc, res); reason != "" {
		return fmt.Errorf("still reproduces: %s", reason)
	}
	fmt.Println("verdict agrees with the oracle")
	return nil
}

func countFaults(byKind map[string]int) int {
	n := 0
	for _, c := range byKind {
		n += c
	}
	return n
}
