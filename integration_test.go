package jmsharness_test

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"jmsharness/internal/broker"
	"jmsharness/internal/harness"
	"jmsharness/internal/jms"
	"jmsharness/internal/wire"
)

// buildBinaries compiles the command-line tools once per test run.
func buildBinaries(t *testing.T, names ...string) map[string]string {
	t.Helper()
	dir := t.TempDir()
	out := map[string]string{}
	for _, name := range names {
		bin := filepath.Join(dir, name)
		cmd := exec.Command("go", "build", "-o", bin, "./cmd/"+name)
		cmd.Dir = "."
		if output, err := cmd.CombinedOutput(); err != nil {
			t.Fatalf("building %s: %v\n%s", name, err, output)
		}
		out[name] = bin
	}
	return out
}

// freePort reserves a loopback port.
func freePort(t *testing.T) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	return addr
}

// waitListening polls until addr accepts connections.
func waitListening(t *testing.T, addr string) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		conn, err := net.DialTimeout("tcp", addr, 200*time.Millisecond)
		if err == nil {
			_ = conn.Close()
			return
		}
		time.Sleep(50 * time.Millisecond)
	}
	t.Fatalf("%s never started listening", addr)
}

// startDaemonProcess launches a binary and registers cleanup.
func startDaemonProcess(t *testing.T, bin string, args ...string) *exec.Cmd {
	t.Helper()
	cmd := exec.Command(bin, args...)
	cmd.Stdout = os.Stderr
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatalf("starting %s: %v", bin, err)
	}
	t.Cleanup(func() {
		_ = cmd.Process.Kill()
		_, _ = cmd.Process.Wait()
	})
	return cmd
}

// TestBinariesEndToEnd runs the real multi-process deployment: a wire
// broker, two test daemons, and the prince executing its stock suite —
// the paper's Figure 4 as five OS processes.
func TestBinariesEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process integration test")
	}
	bins := buildBinaries(t, "jmsbrokerd", "jmsdaemon", "jmsprince")

	brokerAddr := freePort(t)
	startDaemonProcess(t, bins["jmsbrokerd"], "-addr", brokerAddr, "-profile", "unlimited")
	waitListening(t, brokerAddr)

	daemonA := freePort(t)
	daemonB := freePort(t)
	startDaemonProcess(t, bins["jmsdaemon"], "-addr", daemonA, "-broker", brokerAddr, "-name", "daemon-A")
	startDaemonProcess(t, bins["jmsdaemon"], "-addr", daemonB, "-broker", brokerAddr, "-name", "daemon-B")
	waitListening(t, daemonA)
	waitListening(t, daemonB)

	dbPath := filepath.Join(t.TempDir(), "results.json")
	prince := exec.Command(bins["jmsprince"],
		"-daemons", daemonA+","+daemonB,
		"-db", dbPath,
		"-run", "0.4",
	)
	output, err := prince.CombinedOutput()
	if err != nil {
		t.Fatalf("jmsprince failed: %v\n%s", err, output)
	}
	text := string(output)
	if !strings.Contains(text, "all tests conform") {
		t.Errorf("prince output missing conformance verdict:\n%s", text)
	}
	for _, want := range []string{"queue-basic", "pubsub-durable", "transactions", "priority-and-expiry", "delivery-integrity"} {
		if !strings.Contains(text, want) {
			t.Errorf("prince output missing %q", want)
		}
	}
	if fi, err := os.Stat(dbPath); err != nil || fi.Size() == 0 {
		t.Errorf("results database not written: %v", err)
	}
}

// TestAnalyzeBinaryOnSavedLogs exercises the offline path: a harness
// run's trace saved as per-node JSON-lines logs, analysed by
// jmsanalyze.
func TestAnalyzeBinaryOnSavedLogs(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process integration test")
	}
	bins := buildBinaries(t, "jmsanalyze")

	b, err := broker.New(broker.Options{Name: "offline"})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	cfg := harness.Config{
		Name:        "offline",
		Node:        "node-a",
		Destination: jms.Queue("offq"),
		Producers:   []harness.ProducerConfig{{ID: "p1", Rate: 300, BodySize: 64}},
		Consumers:   []harness.ConsumerConfig{{ID: "c1"}},
		Warmup:      20 * time.Millisecond,
		Run:         200 * time.Millisecond,
		Warmdown:    150 * time.Millisecond,
	}
	tr, err := harness.NewRunner(b, nil).Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	logPath := filepath.Join(t.TempDir(), "node-a.log")
	f, err := os.Create(logPath)
	if err != nil {
		t.Fatal(err)
	}
	enc := json.NewEncoder(f)
	for _, ev := range tr.Events {
		if err := enc.Encode(ev); err != nil {
			t.Fatal(err)
		}
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	cmd := exec.Command(bins["jmsanalyze"], "-logs", logPath, "-name", "offline", "-histogram")
	output, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("jmsanalyze failed: %v\n%s", err, output)
	}
	text := string(output)
	for _, want := range []string{"delivery-integrity", "OK", "msgs/s", "delay histogram"} {
		if !strings.Contains(text, want) {
			t.Errorf("jmsanalyze output missing %q:\n%s", want, text)
		}
	}
}

// TestBenchBinaryQuick smoke-tests the figure regenerator at tiny scale.
func TestBenchBinaryQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process integration test")
	}
	bins := buildBinaries(t, "jmsbench")
	jsonDir := t.TempDir()
	cmd := exec.Command(bins["jmsbench"], "-experiment", "fig1", "-scale", "0.5", "-json-dir", jsonDir)
	output, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("jmsbench failed: %v\n%s", err, output)
	}
	if !strings.Contains(string(output), "ordering violations detected") {
		t.Errorf("unexpected output:\n%s", output)
	}
	// The machine-readable report rides along.
	data, err := os.ReadFile(filepath.Join(jsonDir, "BENCH_1.json"))
	if err != nil {
		t.Fatalf("machine-readable report: %v", err)
	}
	var report struct {
		Experiment  string                     `json:"experiment"`
		Experiments map[string]json.RawMessage `json:"experiments"`
	}
	if err := json.Unmarshal(data, &report); err != nil {
		t.Fatalf("BENCH_1.json is not valid JSON: %v", err)
	}
	if report.Experiment != "fig1" || report.Experiments["fig1"] == nil {
		t.Errorf("unexpected report contents:\n%s", data)
	}
}

// TestBrokerdWALPersistence restarts jmsbrokerd on the same WAL and
// checks a persistent message survives the process restart.
func TestBrokerdWALPersistence(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process integration test")
	}
	bins := buildBinaries(t, "jmsbrokerd")
	walPath := filepath.Join(t.TempDir(), "broker.wal")

	runBroker := func() (*exec.Cmd, string) {
		addr := freePort(t)
		cmd := startDaemonProcess(t, bins["jmsbrokerd"], "-addr", addr, "-wal", walPath)
		waitListening(t, addr)
		return cmd, addr
	}

	cmd1, addr1 := runBroker()
	func() {
		factory := wireFactory(addr1)
		conn, err := factory.CreateConnection()
		if err != nil {
			t.Fatal(err)
		}
		defer conn.Close()
		sess, err := conn.CreateSession(false, jms.AckAuto)
		if err != nil {
			t.Fatal(err)
		}
		p, err := sess.CreateProducer(jms.Queue("persistq"))
		if err != nil {
			t.Fatal(err)
		}
		if err := p.Send(jms.NewTextMessage("survives restarts"), jms.DefaultSendOptions()); err != nil {
			t.Fatal(err)
		}
	}()
	_ = cmd1.Process.Kill()
	_, _ = cmd1.Process.Wait()

	_, addr2 := runBroker()
	factory := wireFactory(addr2)
	conn, err := factory.CreateConnection()
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := conn.Start(); err != nil {
		t.Fatal(err)
	}
	sess, err := conn.CreateSession(false, jms.AckAuto)
	if err != nil {
		t.Fatal(err)
	}
	c, err := sess.CreateConsumer(jms.Queue("persistq"))
	if err != nil {
		t.Fatal(err)
	}
	msg, err := c.Receive(3 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if msg == nil {
		t.Fatal("persistent message lost across process restart")
	}
	if msg.Body.(jms.TextBody) != "survives restarts" {
		t.Errorf("recovered %v", msg.Body)
	}
	fmt.Println("persistent message recovered across real process restart")
}

// wireFactory builds a wire client factory (indirection keeps the test
// imports tidy).
func wireFactory(addr string) jms.ConnectionFactory {
	return wire.NewFactory(addr)
}

// TestBenchScaleExperiment runs the cluster scaling sweep through the
// real jmsbench binary and checks the machine-readable report: the
// sweep must reach 4 shards, conform at every point, and scale with a
// wide margin (4 shards at least doubling 1 shard's throughput — the
// configured capacity ratio is 4x, so 2x is a safe floor on CI).
func TestBenchScaleExperiment(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process integration test")
	}
	bins := buildBinaries(t, "jmsbench")
	jsonDir := t.TempDir()
	cmd := exec.Command(bins["jmsbench"], "-experiment", "scale", "-scale", "0.3", "-json-dir", jsonDir)
	output, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("jmsbench scale failed: %v\n%s", err, output)
	}
	data, err := os.ReadFile(filepath.Join(jsonDir, "BENCH_1.json"))
	if err != nil {
		t.Fatalf("machine-readable report: %v", err)
	}
	var report struct {
		ClusterNodes    int    `json:"cluster_nodes"`
		PlacementPolicy string `json:"placement_policy"`
		Experiments     map[string]struct {
			Placement string `json:"placement"`
			Points    []struct {
				Nodes         int     `json:"nodes"`
				ConsumerMsgs  float64 `json:"consumer_msgs_per_sec"`
				ConformanceOK bool    `json:"conformance_ok"`
			} `json:"points"`
		} `json:"experiments"`
	}
	if err := json.Unmarshal(data, &report); err != nil {
		t.Fatalf("BENCH_1.json is not valid JSON: %v", err)
	}
	if report.ClusterNodes != 4 || report.PlacementPolicy != "hash-ring" {
		t.Errorf("report cluster fields = %d/%q, want 4/hash-ring",
			report.ClusterNodes, report.PlacementPolicy)
	}
	points := report.Experiments["scale"].Points
	if len(points) != 4 {
		t.Fatalf("scale sweep has %d points, want 4:\n%s", len(points), data)
	}
	for _, p := range points {
		if !p.ConformanceOK {
			t.Errorf("%d-shard point violated the formal model", p.Nodes)
		}
	}
	if points[3].ConsumerMsgs < 2*points[0].ConsumerMsgs {
		t.Errorf("4 shards (%.1f msg/s) did not double 1 shard (%.1f msg/s)",
			points[3].ConsumerMsgs, points[0].ConsumerMsgs)
	}
}

// TestBrokerdClusterEndToEnd starts jmsbrokerd -cluster 3 as a real
// process, works several queues through the single wire endpoint, and
// reads /clusterz to check the federation actually sharded them.
func TestBrokerdClusterEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process integration test")
	}
	bins := buildBinaries(t, "jmsbrokerd")
	addr := freePort(t)
	obsAddr := freePort(t)
	startDaemonProcess(t, bins["jmsbrokerd"],
		"-addr", addr, "-cluster", "3", "-obs-addr", obsAddr)
	waitListening(t, addr)
	waitListening(t, obsAddr)

	conn, err := wireFactory(addr).CreateConnection()
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := conn.Start(); err != nil {
		t.Fatal(err)
	}
	sess, err := conn.CreateSession(false, jms.AckAuto)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		q := jms.Queue(fmt.Sprintf("itq-%d", i))
		p, err := sess.CreateProducer(q)
		if err != nil {
			t.Fatal(err)
		}
		if err := p.Send(jms.NewTextMessage("hi"), jms.DefaultSendOptions()); err != nil {
			t.Fatal(err)
		}
		c, err := sess.CreateConsumer(q)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := c.Receive(2 * time.Second); err != nil {
			t.Fatalf("queue %s: %v", q.Name(), err)
		}
		_ = c.Close()
	}

	resp, err := http.Get("http://" + obsAddr + "/clusterz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var status struct {
		Placement string `json:"placement"`
		Nodes     []struct {
			Name   string `json:"name"`
			Routed int64  `json:"routed"`
		} `json:"nodes"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&status); err != nil {
		t.Fatalf("/clusterz: %v", err)
	}
	if len(status.Nodes) != 3 || status.Placement != "hash-ring" {
		t.Fatalf("/clusterz topology = %d nodes %q placement", len(status.Nodes), status.Placement)
	}
	var total int64
	busy := 0
	for _, n := range status.Nodes {
		total += n.Routed
		if n.Routed > 0 {
			busy++
		}
	}
	if total != 8 {
		t.Errorf("cluster routed %d messages, want 8", total)
	}
	if busy < 2 {
		t.Errorf("only %d of 3 nodes took traffic; sharding is not spreading", busy)
	}
}
