module jmsharness

go 1.22
