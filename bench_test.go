package jmsharness_test

import (
	"fmt"
	"path/filepath"
	"sync/atomic"
	"testing"
	"time"

	"jmsharness/internal/analysis"
	"jmsharness/internal/broker"
	"jmsharness/internal/experiments"
	"jmsharness/internal/harness"
	"jmsharness/internal/jms"
	"jmsharness/internal/model"
	"jmsharness/internal/store"
	"jmsharness/internal/tracedb"
	"jmsharness/internal/wire"
)

// The benchmarks in this file regenerate the paper's evaluation, one
// benchmark per table/figure (see DESIGN.md §4 and EXPERIMENTS.md). The
// throughput benchmarks report msgs/s via b.ReportMetric; absolute
// numbers are properties of the simulated provider profiles, but the
// *shapes* (who wins, where saturation and droop fall) are the paper's
// results. For the full-resolution series use:
//
//	go run ./cmd/jmsbench -experiment all
//
// Sweep durations here are scaled down (benchScale) to keep
// `go test -bench=.` under a couple of minutes.

const benchScale = 0.25

// benchDemands is a reduced demand axis spanning the paper's 0–500,000
// b/s range.
var benchDemands = []float64{50_000, 200_000, 350_000, 500_000}

// runSweepPoint measures one demand point and reports pub/sub msgs/s.
func runSweepPoint(b *testing.B, opts experiments.SweepOptions, demand float64) {
	b.Helper()
	opts.DemandsBps = []float64{demand}
	var pub, sub float64
	for i := 0; i < b.N; i++ {
		points, err := experiments.ThroughputSweep(opts)
		if err != nil {
			b.Fatal(err)
		}
		pub, sub = points[0].PublisherMsgs, points[0].SubscriberMsgs
	}
	b.ReportMetric(pub, "pub-msgs/s")
	b.ReportMetric(sub, "sub-msgs/s")
	b.ReportMetric(0, "ns/op") // wall time is workload-defined, not meaningful
}

// BenchmarkFigure2ProviderI regenerates Figure 2: Provider I throughput
// vs demand — publisher and subscriber plateau together at the
// sustainable rate.
func BenchmarkFigure2ProviderI(b *testing.B) {
	for _, demand := range benchDemands {
		b.Run(fmt.Sprintf("demand=%.0fbps", demand), func(b *testing.B) {
			runSweepPoint(b, experiments.Figure2Options(benchScale), demand)
		})
	}
}

// BenchmarkFigure3ProviderII regenerates Figure 3: Provider II
// throughput vs demand — publisher tracks demand while subscriber
// throughput drops once the system is over-stressed.
func BenchmarkFigure3ProviderII(b *testing.B) {
	for _, demand := range benchDemands {
		b.Run(fmt.Sprintf("demand=%.0fbps", demand), func(b *testing.B) {
			runSweepPoint(b, experiments.Figure3Options(benchScale), demand)
		})
	}
}

// BenchmarkFigure1OrderingDetection regenerates the Figure 1 scenario:
// a reordering provider is detected by Property 3.
func BenchmarkFigure1OrderingDetection(b *testing.B) {
	var violations int
	for i := 0; i < b.N; i++ {
		res, err := experiments.Figure1(benchScale)
		if err != nil {
			b.Fatal(err)
		}
		violations = res.Violations
	}
	b.ReportMetric(float64(violations), "violations")
}

// BenchmarkPerformanceMeasures regenerates the §3.2 performance-measure
// block: throughput, delay statistics and fairness.
func BenchmarkPerformanceMeasures(b *testing.B) {
	var m *analysis.Measures
	for i := 0; i < b.N; i++ {
		res, err := experiments.PerformanceMeasures(benchScale)
		if err != nil {
			b.Fatal(err)
		}
		if !res.Conformance.OK() {
			b.Fatalf("measurement workload failed conformance:\n%s", res.Conformance)
		}
		m = res.Measures
	}
	b.ReportMetric(m.Producer.PerSecond, "prod-msgs/s")
	b.ReportMetric(m.Consumer.PerSecond, "cons-msgs/s")
	b.ReportMetric(float64(m.Delay.Mean.Microseconds()), "delay-mean-us")
	b.ReportMetric(float64(m.Delay.StdDev.Microseconds()), "delay-sd-us")
	b.ReportMetric(float64(m.Fairness.ConsumerUnfairness.Microseconds()), "unfairness-us")
}

// BenchmarkProviderComparison regenerates the footnote-9 three-provider
// comparison: throughputs differing by roughly a factor of 10.
func BenchmarkProviderComparison(b *testing.B) {
	var rows []experiments.ComparisonRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.ProviderComparison(benchScale)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		b.ReportMetric(r.SubscriberMsgs, r.Provider+"-msgs/s")
	}
	if len(rows) == 3 && rows[2].SubscriberMsgs > 0 {
		b.ReportMetric(rows[0].SubscriberMsgs/rows[2].SubscriberMsgs, "fast/slow-ratio")
	}
}

// BenchmarkConformanceMatrix runs the fault-detection matrix: every
// seeded violation class must be caught.
func BenchmarkConformanceMatrix(b *testing.B) {
	detected := 0
	for i := 0; i < b.N; i++ {
		rows, err := experiments.ConformanceMatrix(benchScale)
		if err != nil {
			b.Fatal(err)
		}
		detected = 0
		for _, r := range rows {
			if r.Detected {
				detected++
			}
		}
		if detected != len(rows) {
			b.Fatalf("only %d/%d variants behaved as expected:\n%s",
				detected, len(rows), experiments.FormatConformance(rows))
		}
	}
	b.ReportMetric(float64(detected), "variants-detected")
}

// §4.1 ablation — per-event results-database loading vs streaming
// aggregation on the same 300k-event trace.

// BenchmarkTraceDBIngest measures loading a performance-test-sized
// trace into the results database and running the delay query (the
// paper's JDBC bottleneck).
func BenchmarkTraceDBIngest(b *testing.B) {
	tr := experiments.SyntheticTrace(300_000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		db := tracedb.New()
		db.BulkLoad("bench", tr.Events)
		if rows := db.Delays("bench"); len(rows) == 0 {
			b.Fatal("no delay rows")
		}
	}
	b.ReportMetric(float64(len(tr.Events)), "events")
}

// BenchmarkStreamingStats measures the streaming-aggregation
// alternative the paper recommends in §4.1.
func BenchmarkStreamingStats(b *testing.B) {
	tr := experiments.SyntheticTrace(300_000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		agg := analysis.NewStreamAggregator()
		for _, ev := range tr.Events {
			agg.Observe(ev)
		}
		if m := agg.Finalize(); m.Consumer.Count == 0 {
			b.Fatal("no deliveries aggregated")
		}
	}
	b.ReportMetric(float64(len(tr.Events)), "events")
}

// BenchmarkModelCheck measures the full safety-property check (the SQL
// correctness queries of §4) on a large trace.
func BenchmarkModelCheck(b *testing.B) {
	tr := experiments.SyntheticTrace(90_000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		report, err := model.Check(tr, model.DefaultConfig())
		if err != nil {
			b.Fatal(err)
		}
		if !report.OK() {
			b.Fatal("synthetic trace should conform")
		}
	}
}

// BenchmarkAblationBacklogPenalty isolates the design choice behind the
// Figure 2 vs Figure 3 difference: the same over-stressed workload
// against a flow-controlled profile and an accept-and-degrade profile.
func BenchmarkAblationBacklogPenalty(b *testing.B) {
	const demand = 500_000
	cases := map[string]experiments.SweepOptions{
		"flow-controlled":    experiments.Figure2Options(benchScale),
		"accept-and-degrade": experiments.Figure3Options(benchScale),
	}
	for name, opts := range cases {
		b.Run(name, func(b *testing.B) {
			runSweepPoint(b, opts, demand)
		})
	}
}

// BenchmarkBrokerSendReceive measures the raw in-process provider hot
// path: one persistent send plus one receive.
func BenchmarkBrokerSendReceive(b *testing.B) {
	bk, err := broker.New(broker.Options{Name: "bench"})
	if err != nil {
		b.Fatal(err)
	}
	defer bk.Close()
	conn, err := bk.CreateConnection()
	if err != nil {
		b.Fatal(err)
	}
	if err := conn.Start(); err != nil {
		b.Fatal(err)
	}
	sess, err := conn.CreateSession(false, jms.AckAuto)
	if err != nil {
		b.Fatal(err)
	}
	q := jms.Queue("bench")
	p, err := sess.CreateProducer(q)
	if err != nil {
		b.Fatal(err)
	}
	c, err := sess.CreateConsumer(q)
	if err != nil {
		b.Fatal(err)
	}
	payload := make([]byte, 512)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := p.Send(jms.NewBytesMessage(payload), jms.DefaultSendOptions()); err != nil {
			b.Fatal(err)
		}
		msg, err := c.Receive(time.Second)
		if err != nil || msg == nil {
			b.Fatalf("receive: %v, %v", msg, err)
		}
	}
}

// BenchmarkWireSendReceive measures the same hot path across the TCP
// wire protocol (one loopback round trip per send and per receive) —
// the cost of the protocol bridge relative to BenchmarkBrokerSendReceive.
func BenchmarkWireSendReceive(b *testing.B) {
	bk, err := broker.New(broker.Options{Name: "wirebench"})
	if err != nil {
		b.Fatal(err)
	}
	defer bk.Close()
	srv, err := wire.NewServer(bk, "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	srv.Start()
	defer srv.Close()
	conn, err := wire.NewFactory(srv.Addr()).CreateConnection()
	if err != nil {
		b.Fatal(err)
	}
	defer conn.Close()
	if err := conn.Start(); err != nil {
		b.Fatal(err)
	}
	sess, err := conn.CreateSession(false, jms.AckAuto)
	if err != nil {
		b.Fatal(err)
	}
	q := jms.Queue("bench")
	p, err := sess.CreateProducer(q)
	if err != nil {
		b.Fatal(err)
	}
	c, err := sess.CreateConsumer(q)
	if err != nil {
		b.Fatal(err)
	}
	payload := make([]byte, 512)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := p.Send(jms.NewBytesMessage(payload), jms.DefaultSendOptions()); err != nil {
			b.Fatal(err)
		}
		msg, err := c.Receive(time.Second)
		if err != nil || msg == nil {
			b.Fatalf("receive: %v, %v", msg, err)
		}
	}
}

// benchBrokerPipe builds a producer/consumer pair on queue name against
// bk, failing the benchmark on any setup error.
func benchBrokerPipe(b *testing.B, bk *broker.Broker, name string) (jms.Producer, jms.Consumer) {
	b.Helper()
	conn, err := bk.CreateConnection()
	if err != nil {
		b.Fatal(err)
	}
	if err := conn.Start(); err != nil {
		b.Fatal(err)
	}
	sess, err := conn.CreateSession(false, jms.AckAuto)
	if err != nil {
		b.Fatal(err)
	}
	q := jms.Queue(name)
	p, err := sess.CreateProducer(q)
	if err != nil {
		b.Fatal(err)
	}
	c, err := sess.CreateConsumer(q)
	if err != nil {
		b.Fatal(err)
	}
	return p, c
}

// BenchmarkBrokerSendAckPersistent measures the durable hot path: one
// persistent send (group-commit WAL, fsync before return), one receive,
// and the auto-acknowledge that removes the stable record.
func BenchmarkBrokerSendAckPersistent(b *testing.B) {
	w, err := store.OpenWAL(filepath.Join(b.TempDir(), "bench.wal"), store.WALOptions{Sync: true})
	if err != nil {
		b.Fatal(err)
	}
	bk, err := broker.New(broker.Options{Name: "walbench", Stable: w})
	if err != nil {
		b.Fatal(err)
	}
	defer bk.Close()
	defer w.Close()
	p, c := benchBrokerPipe(b, bk, "bench")
	payload := make([]byte, 512)
	opts := jms.DefaultSendOptions()
	opts.Mode = jms.Persistent
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := p.Send(jms.NewBytesMessage(payload), opts); err != nil {
			b.Fatal(err)
		}
		msg, err := c.Receive(time.Second)
		if err != nil || msg == nil {
			b.Fatalf("receive: %v, %v", msg, err)
		}
	}
}

// BenchmarkBrokerSendAckPersistentParallel runs the same durable
// send/receive/ack loop from parallel workers on distinct queues: the
// sharded registry lets the sends proceed concurrently and the WAL
// committer amortises their fsyncs into group commits.
func BenchmarkBrokerSendAckPersistentParallel(b *testing.B) {
	w, err := store.OpenWAL(filepath.Join(b.TempDir(), "benchp.wal"), store.WALOptions{Sync: true})
	if err != nil {
		b.Fatal(err)
	}
	bk, err := broker.New(broker.Options{Name: "walbenchp", Stable: w})
	if err != nil {
		b.Fatal(err)
	}
	defer bk.Close()
	defer w.Close()
	var queueSeq atomic.Int64
	payload := make([]byte, 512)
	opts := jms.DefaultSendOptions()
	opts.Mode = jms.Persistent
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		p, c := benchBrokerPipe(b, bk, fmt.Sprintf("bench-%d", queueSeq.Add(1)))
		for pb.Next() {
			if err := p.Send(jms.NewBytesMessage(payload), opts); err != nil {
				b.Fatal(err)
			}
			msg, err := c.Receive(time.Second)
			if err != nil || msg == nil {
				b.Fatalf("receive: %v, %v", msg, err)
			}
		}
	})
}

// benchWALMessage builds a message for the raw WAL append benchmarks.
func benchWALMessage(id int) *jms.Message {
	m := jms.NewBytesMessage(make([]byte, 256))
	m.ID = fmt.Sprintf("ID:bench-%d", id)
	m.Destination = jms.Queue("q")
	m.Mode = jms.Persistent
	m.Priority = jms.PriorityDefault
	return m
}

// BenchmarkWALAppend measures a single-writer synchronous WAL append —
// one record per fsync, the group committer's degenerate case.
func BenchmarkWALAppend(b *testing.B) {
	w, err := store.OpenWAL(filepath.Join(b.TempDir(), "append.wal"), store.WALOptions{Sync: true})
	if err != nil {
		b.Fatal(err)
	}
	defer w.Close()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := w.AddMessage("queue:q", benchWALMessage(i)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWALAppendParallel measures concurrent synchronous appends:
// group commit shares each fsync across every writer in the batch, so
// per-record cost drops roughly with the worker count.
func BenchmarkWALAppendParallel(b *testing.B) {
	w, err := store.OpenWAL(filepath.Join(b.TempDir(), "appendp.wal"), store.WALOptions{Sync: true})
	if err != nil {
		b.Fatal(err)
	}
	defer w.Close()
	var seq atomic.Int64
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if _, err := w.AddMessage("queue:q", benchWALMessage(int(seq.Add(1)))); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkWireSendPipelined compares blocking wire sends against
// credit-windowed pipelined sends on the same server. The blocking arm
// pays one TCP round trip per message; the pipelined arms stage a
// window of sends into coalesced frames and settle them against the
// server's batched completions, so per-message cost approaches the
// encode/decode work alone. Receives are interleaved (singly for the
// blocking arm, a window at a time for the pipelined ones) to keep the
// mailbox backlog bounded.
func BenchmarkWireSendPipelined(b *testing.B) {
	bk, err := broker.New(broker.Options{Name: "pipebench"})
	if err != nil {
		b.Fatal(err)
	}
	defer bk.Close()
	srv, err := wire.NewServer(bk, "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	srv.Start()
	defer srv.Close()
	payload := make([]byte, 512)
	opts := jms.DefaultSendOptions()
	arms := []struct {
		name   string
		window int
	}{
		{"blocking", 0},
		{"window32", 32},
		{"window256", 256},
	}
	for _, arm := range arms {
		b.Run(arm.name, func(b *testing.B) {
			f := wire.NewFactory(srv.Addr())
			if arm.window > 0 {
				f = f.WithPipelining(arm.window)
			}
			conn, err := f.CreateConnection()
			if err != nil {
				b.Fatal(err)
			}
			defer conn.Close()
			if err := conn.Start(); err != nil {
				b.Fatal(err)
			}
			sess, err := conn.CreateSession(false, jms.AckAuto)
			if err != nil {
				b.Fatal(err)
			}
			q := jms.Queue("pipe-" + arm.name)
			p, err := sess.CreateProducer(q)
			if err != nil {
				b.Fatal(err)
			}
			c, err := sess.CreateConsumer(q)
			if err != nil {
				b.Fatal(err)
			}
			recv := func(n int) {
				for i := 0; i < n; i++ {
					msg, err := c.Receive(5 * time.Second)
					if err != nil || msg == nil {
						b.Fatalf("receive: %v, %v", msg, err)
					}
				}
			}
			b.ReportAllocs()
			b.ResetTimer()
			if arm.window == 0 {
				for i := 0; i < b.N; i++ {
					if err := p.Send(jms.NewBytesMessage(payload), opts); err != nil {
						b.Fatal(err)
					}
					recv(1)
				}
				return
			}
			ap, ok := p.(jms.AsyncProducer)
			if !ok {
				b.Fatal("pipelined wire producer is not an AsyncProducer")
			}
			pending := make([]jms.Completion, 0, arm.window)
			settle := func() {
				for _, comp := range pending {
					if err := comp(); err != nil {
						b.Fatal(err)
					}
				}
				recv(len(pending))
				pending = pending[:0]
			}
			for i := 0; i < b.N; i++ {
				comp, err := ap.SendAsync(jms.NewBytesMessage(payload), opts)
				if err != nil {
					b.Fatal(err)
				}
				pending = append(pending, comp)
				if len(pending) == arm.window {
					settle()
				}
			}
			settle()
		})
	}
}

// BenchmarkWALAppendSharded measures concurrent synchronous appends
// against the segmented WAL at 1, 2 and 4 shards. Four writers append
// to four distinct queues; with more shards their group commits run in
// independent per-shard commit loops instead of serialising behind one
// fsync queue.
func BenchmarkWALAppendSharded(b *testing.B) {
	for _, shards := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("%dshards", shards), func(b *testing.B) {
			w, err := store.OpenSharded(filepath.Join(b.TempDir(), "shard.wal"), shards, store.WALOptions{Sync: true})
			if err != nil {
				b.Fatal(err)
			}
			defer w.Close()
			const writers = 4
			var seq atomic.Int64
			errs := make(chan error, writers)
			b.ReportAllocs()
			b.ResetTimer()
			for g := 0; g < writers; g++ {
				go func(g int) {
					endpoint := fmt.Sprintf("queue:sat-%d", g)
					for {
						i := seq.Add(1)
						if i > int64(b.N) {
							errs <- nil
							return
						}
						if _, err := w.AddMessage(endpoint, benchWALMessage(int(i))); err != nil {
							errs <- err
							return
						}
					}
				}(g)
			}
			for g := 0; g < writers; g++ {
				if err := <-errs; err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkHarnessOverhead measures a whole harness run per iteration,
// bounding the fixed cost the harness adds around a test.
func BenchmarkHarnessOverhead(b *testing.B) {
	for i := 0; i < b.N; i++ {
		bk, err := broker.New(broker.Options{Name: "hb"})
		if err != nil {
			b.Fatal(err)
		}
		cfg := harness.Config{
			Name:        "overhead",
			Destination: jms.Queue("q"),
			Producers:   []harness.ProducerConfig{{ID: "p", Rate: 1000, BodySize: 64}},
			Consumers:   []harness.ConsumerConfig{{ID: "c"}},
			Warmup:      5 * time.Millisecond,
			Run:         50 * time.Millisecond,
			Warmdown:    20 * time.Millisecond,
		}
		tr, err := harness.NewRunner(bk, nil).Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if len(tr.Events) == 0 {
			b.Fatal("empty trace")
		}
		_ = bk.Close()
	}
}

// BenchmarkExpectationModels compares the three expiry expectation
// models (§5 future work) on the same delay distribution.
func BenchmarkExpectationModels(b *testing.B) {
	tr := experiments.SyntheticTrace(30_000)
	w, err := model.Extract(tr)
	if err != nil {
		b.Fatal(err)
	}
	m, err := analysis.Analyze(tr, analysis.Options{HistogramBuckets: 50})
	if err != nil {
		b.Fatal(err)
	}
	models := map[string]model.ExpectationModel{
		"simple":    model.SimpleExpectation{MeanLatency: m.Delay.Mean},
		"histogram": model.HistogramExpectation{Delays: m.DelayHistogram},
		"normal": model.NormalExpectation{
			MeanSeconds:   m.Delay.Mean.Seconds(),
			StdDevSeconds: m.Delay.StdDev.Seconds(),
		},
	}
	for name, em := range models {
		b.Run(name, func(b *testing.B) {
			opts := model.DefaultExpiryOptions()
			opts.Model = em
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				res := model.CheckExpiredMessages(w, opts)
				if len(res.Violations) > 0 {
					b.Fatal("clean trace flagged")
				}
			}
		})
	}
}
